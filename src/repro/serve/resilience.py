"""Resilience policy for the solver service: deadlines, shedding, breakers.

The serving layer's throughput story (coalesced multi-RHS batching) is
only useful if one bad request cannot take its neighbours down with it.
This module holds the pieces :class:`~repro.serve.service.SolverService`
composes into its failure story:

- :class:`ResiliencePolicy` — the per-service knobs: a default
  per-request deadline, a latency-aware load-shedding threshold, the
  circuit-breaker trip/reset parameters, the degradation ladder
  (``fallback="digital"``), and the shard-restart budget;
- :class:`CircuitBreaker` — a classic closed → open → half-open state
  machine, one per :class:`~repro.serve.cache.PreparedKey`, so a matrix
  or configuration whose preparation or solves keep failing stops
  occupying its shard (and its cached entry is invalidated, forcing the
  half-open probe to re-prepare from scratch);
- :func:`digital_fallback` — the bottom rung of the degradation ladder:
  answer an analog failure with the digital reference solve (the same
  LAPACK binding the engines use for their ``reference`` field), tagged
  ``degraded=True`` so callers can tell a full-fidelity analog answer
  from a served-anyway digital one.

Everything here is deterministic: the breaker takes an injectable clock
(tests drive it with a fake), and the fallback is a pure function of the
request — resilience never perturbs the bit-identity of the success
path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.common import solve_columns
from repro.core.solution import LeanSolveResult, SolveResult
from repro.errors import ConvergenceError, ProgrammingError, ServeError, SolverError
from repro.serve.requests import SolveRequest

__all__ = [
    "DEGRADABLE_ERRORS",
    "CircuitBreaker",
    "ResiliencePolicy",
    "digital_fallback",
]

#: Analog failures the ``fallback="digital"`` ladder may answer with the
#: digital reference solve. Anything else (validation errors, singular
#: systems, service lifecycle errors) fails the request as-is: a
#: singular matrix is just as singular digitally, and policy errors must
#: surface, not be papered over.
DEGRADABLE_ERRORS = (ConvergenceError, ProgrammingError, SolverError)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Failure-handling knobs of one :class:`~repro.serve.service.SolverService`.

    Parameters
    ----------
    deadline_s:
        Default per-request deadline (submit to execution start). A
        request whose deadline expired while queued fails fast with
        :class:`~repro.errors.DeadlineExceededError` instead of
        occupying a batch slot. ``None`` disables; a request's own
        ``deadline_s`` always wins over this default.
    shed_latency_s:
        Latency-aware load shedding: a submit whose estimated wait
        (shard backlog x recent per-request service time) exceeds this
        is refused with :class:`~repro.errors.OverloadedError` carrying
        the estimate as ``retry_after_s``. ``None`` disables. This sits
        *on top of* queue-depth backpressure: backpressure bounds
        memory, shedding bounds latency.
    breaker_threshold:
        Consecutive failures (preparation or solve) of one
        :class:`~repro.serve.cache.PreparedKey` that trip its circuit
        breaker. ``0`` disables breakers entirely.
    breaker_reset_s:
        How long a tripped breaker stays open before admitting one
        half-open probe (which re-prepares the entry — the cached one is
        invalidated on trip).
    fallback:
        ``"none"`` fails analog errors to the caller; ``"digital"``
        answers :data:`DEGRADABLE_ERRORS` with
        :func:`digital_fallback`, tagged ``degraded=True``.
    max_shard_restarts:
        How many times a crashed shard worker loop restarts before the
        shard is marked dead (subsequent submits to it raise
        :class:`~repro.errors.ShardFailedError`).
    """

    deadline_s: float | None = None
    shed_latency_s: float | None = None
    breaker_threshold: int = 5
    breaker_reset_s: float = 5.0
    fallback: str = "none"
    max_shard_restarts: int = 3

    def __post_init__(self):
        if self.deadline_s is not None and not self.deadline_s > 0.0:
            raise ServeError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.shed_latency_s is not None and not self.shed_latency_s > 0.0:
            raise ServeError(f"shed_latency_s must be > 0, got {self.shed_latency_s}")
        if self.breaker_threshold < 0:
            raise ServeError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if not self.breaker_reset_s > 0.0:
            raise ServeError(f"breaker_reset_s must be > 0, got {self.breaker_reset_s}")
        if self.fallback not in ("none", "digital"):
            raise ServeError(
                f"fallback must be 'none' or 'digital', got {self.fallback!r}"
            )
        if self.max_shard_restarts < 0:
            raise ServeError(
                f"max_shard_restarts must be >= 0, got {self.max_shard_restarts}"
            )


class CircuitBreaker:
    """Closed → open → half-open breaker for one prepared solver.

    ``record_failure`` counts consecutive failures; at ``threshold`` the
    breaker opens and :meth:`allow` refuses execution until ``reset_s``
    elapsed, after which one half-open probe is admitted: success closes
    the breaker, failure re-opens it (and restarts the reset clock).

    ``clock`` is injectable so tests can step time deterministically;
    ``on_transition`` fires once per state change (the service counts
    these into its metrics).
    """

    def __init__(
        self,
        threshold: int,
        reset_s: float,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[], None] | None = None,
    ):
        if threshold < 1:
            raise ServeError(f"breaker threshold must be >= 1, got {threshold}")
        if not reset_s > 0.0:
            raise ServeError(f"breaker reset_s must be > 0, got {reset_s}")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"``, or ``"half_open"``."""
        with self._lock:
            return self._state

    def _transition(self, state: str) -> None:
        # Caller holds the lock.
        self._state = state
        if self._on_transition is not None:
            self._on_transition()

    def allow(self) -> bool:
        """Whether an execution attempt may proceed right now.

        While open, returns ``False`` until ``reset_s`` elapsed, then
        transitions to half-open and admits the probe. (The owning
        shard worker is single-threaded, so at most one probe is in
        flight before its outcome is recorded.)
        """
        with self._lock:
            if self._state == "open":
                if self._clock() - self._opened_at < self.reset_s:
                    return False
                self._transition("half_open")
            return True

    def is_open(self) -> bool:
        """Non-mutating open check for the submit fast-fail path."""
        with self._lock:
            return (
                self._state == "open"
                and self._clock() - self._opened_at < self.reset_s
            )

    def retry_after_s(self) -> float:
        """Time until the breaker admits a half-open probe (0 if not open)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(0.0, self.reset_s - (self._clock() - self._opened_at))

    def record_success(self) -> None:
        """Note one successful execution (closes a half-open breaker)."""
        with self._lock:
            self._failures = 0
            if self._state != "closed":
                self._transition("closed")

    def record_failure(self) -> bool:
        """Note one failed execution; returns True when the breaker tripped open."""
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or (
                self._state == "closed" and self._failures >= self.threshold
            ):
                self._opened_at = self._clock()
                self._transition("open")
                return True
            return False


def digital_fallback(
    request: SolveRequest, *, lean: bool = False
) -> SolveResult | LeanSolveResult:
    """Answer one request with the digital reference solve, tagged degraded.

    Uses the same LAPACK factor/solve binding
    (:func:`repro.core.common.solve_columns`) the analog engines use to
    compute their ``reference`` field, so a degraded answer equals what
    the failed analog solve's reference would have been —
    ``relative_error`` is exactly 0 and ``x is reference`` by
    construction.
    """
    x = solve_columns(request.matrix, request.b, what="system matrix")
    metadata = {"degraded": True, "fallback": "digital"}
    if lean:
        return LeanSolveResult(
            x=x, reference=x, solver="digital-fallback", metadata=metadata
        )
    return SolveResult(x=x, reference=x, solver="digital-fallback", metadata=metadata)
