"""Service telemetry: throughput, latency quantiles, batching, caching.

A :class:`MetricsRecorder` accumulates counters from the submit path and
the shard workers; :meth:`MetricsRecorder.snapshot` folds in the shard
cache stats and freezes everything into a :class:`ServiceMetrics` —
machine-readable via :meth:`ServiceMetrics.as_dict`, human-readable via
:meth:`ServiceMetrics.table` (rendered with
:func:`repro.analysis.reporting.format_table`, like every other bench
artifact in this repo).
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import format_table
from repro.serve.cache import CacheStats

__all__ = ["MetricsRecorder", "ServiceMetrics"]


@dataclass(frozen=True)
class ServiceMetrics:
    """Immutable snapshot of service telemetry."""

    requests_submitted: int
    requests_completed: int
    requests_failed: int
    requests_rejected: int
    requests_shed: int
    deadline_misses: int
    retries: int
    breaker_transitions: int
    degraded: int
    shard_crashes: int
    batches_executed: int
    batch_size_histogram: dict[int, int]
    mean_batch_size: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    latency_mean_s: float
    latency_max_s: float
    throughput_rps: float
    wall_s: float
    cache: CacheStats
    prepare_s: float
    #: Per-stage latency breakdown fed from tracing spans (``repro.obs``):
    #: stage name → ``{count, total_s, mean_s, p95_s, max_s}``. Empty
    #: when tracing is disabled — stages are observed, never synthesized.
    stages: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat, JSON-serializable view (cache counters inlined)."""
        out = {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "requests_rejected": self.requests_rejected,
            "requests_shed": self.requests_shed,
            "deadline_misses": self.deadline_misses,
            "retries": self.retries,
            "breaker_transitions": self.breaker_transitions,
            "degraded": self.degraded,
            "shard_crashes": self.shard_crashes,
            "batches_executed": self.batches_executed,
            "batch_size_histogram": dict(sorted(self.batch_size_histogram.items())),
            "mean_batch_size": self.mean_batch_size,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "latency_p99_s": self.latency_p99_s,
            "latency_mean_s": self.latency_mean_s,
            "latency_max_s": self.latency_max_s,
            "throughput_rps": self.throughput_rps,
            "wall_s": self.wall_s,
            "prepare_s": self.prepare_s,
            "stages": {name: dict(stats) for name, stats in sorted(self.stages.items())},
        }
        for name, value in self.cache.as_dict().items():
            out[f"cache_{name}"] = value
        return out

    def as_json(self) -> str:
        """JSON encoding of :meth:`as_dict` (histogram keys stringified).

        This is the canonical serialized form: the network metrics
        response, the bench artifacts, and the status CLI all consume
        it instead of reaching into recorder internals.
        """
        data = self.as_dict()
        data["batch_size_histogram"] = {
            str(size): count for size, count in data["batch_size_histogram"].items()
        }
        return json.dumps(data)

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceMetrics":
        """Rebuild a snapshot from its :meth:`as_dict`/:meth:`as_json` form."""
        return cls(
            requests_submitted=data["requests_submitted"],
            requests_completed=data["requests_completed"],
            requests_failed=data["requests_failed"],
            requests_rejected=data["requests_rejected"],
            requests_shed=data["requests_shed"],
            deadline_misses=data["deadline_misses"],
            retries=data["retries"],
            breaker_transitions=data["breaker_transitions"],
            degraded=data["degraded"],
            shard_crashes=data["shard_crashes"],
            batches_executed=data["batches_executed"],
            batch_size_histogram={
                int(size): count
                for size, count in data["batch_size_histogram"].items()
            },
            mean_batch_size=data["mean_batch_size"],
            latency_p50_s=data["latency_p50_s"],
            latency_p95_s=data["latency_p95_s"],
            latency_p99_s=data["latency_p99_s"],
            latency_mean_s=data["latency_mean_s"],
            latency_max_s=data["latency_max_s"],
            throughput_rps=data["throughput_rps"],
            wall_s=data["wall_s"],
            cache=CacheStats(
                hits=data["cache_hits"],
                misses=data["cache_misses"],
                evictions=data["cache_evictions"],
            ),
            prepare_s=data["prepare_s"],
            # .get: payloads predating the tracing stages survive round-trip.
            stages={
                name: dict(stats) for name, stats in data.get("stages", {}).items()
            },
        )

    @classmethod
    def from_json(cls, payload: str) -> "ServiceMetrics":
        """Rebuild a snapshot from its :meth:`as_json` string."""
        return cls.from_dict(json.loads(payload))

    def table(self, title: str = "solver service metrics") -> str:
        """ASCII table of the headline numbers."""
        histogram = " ".join(
            f"{size}x{count}" for size, count in sorted(self.batch_size_histogram.items())
        )
        rows = [
            ["requests completed", f"{self.requests_completed}/{self.requests_submitted}"],
            ["requests failed", str(self.requests_failed)],
            ["requests rejected", str(self.requests_rejected)],
            ["requests shed", str(self.requests_shed)],
            ["deadline misses", str(self.deadline_misses)],
            ["isolation retries", str(self.retries)],
            ["breaker transitions", str(self.breaker_transitions)],
            ["degraded (fallback)", str(self.degraded)],
            ["shard crashes", str(self.shard_crashes)],
            ["throughput (solve/s)", f"{self.throughput_rps:.1f}"],
            ["latency p50 (ms)", f"{self.latency_p50_s * 1e3:.2f}"],
            ["latency p95 (ms)", f"{self.latency_p95_s * 1e3:.2f}"],
            ["latency p99 (ms)", f"{self.latency_p99_s * 1e3:.2f}"],
            ["latency mean (ms)", f"{self.latency_mean_s * 1e3:.2f}"],
            ["latency max (ms)", f"{self.latency_max_s * 1e3:.2f}"],
            ["wall clock (s)", f"{self.wall_s:.3f}"],
            ["batches executed", str(self.batches_executed)],
            ["mean batch size", f"{self.mean_batch_size:.2f}"],
            ["batch-size histogram", histogram or "-"],
            ["cache hit rate", f"{self.cache.hit_rate * 100:.1f}%"],
            ["cache hits/misses/evictions",
             f"{self.cache.hits}/{self.cache.misses}/{self.cache.evictions}"],
            ["prepare time (s)", f"{self.prepare_s:.3f}"],
        ]
        for name, stats in sorted(self.stages.items()):
            rows.append(
                [
                    f"stage {name} (ms)",
                    f"mean {stats['mean_s'] * 1e3:.2f}, p95 {stats['p95_s'] * 1e3:.2f}"
                    f", n={stats['count']}",
                ]
            )
        return format_table(["metric", "value"], rows, title=title)


@dataclass
class MetricsRecorder:
    """Thread-safe accumulator behind :class:`ServiceMetrics`."""

    _lock: threading.Lock = field(default_factory=threading.Lock)
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    shed: int = 0
    deadline_misses: int = 0
    retries: int = 0
    breaker_transitions: int = 0
    degraded: int = 0
    shard_crashes: int = 0
    batch_sizes: Counter = field(default_factory=Counter)
    latencies: list = field(default_factory=list)
    prepare_s: float = 0.0
    first_submit_t: float | None = None
    last_done_t: float | None = None
    #: Stage name → per-occurrence durations (fed by the tracing hook).
    stage_s: dict = field(default_factory=dict)

    def record_submit(self) -> None:
        """Count one accepted request (stamps the throughput window start)."""
        with self._lock:
            self.submitted += 1
            if self.first_submit_t is None:
                self.first_submit_t = time.perf_counter()

    def record_rejected(self) -> None:
        """Count one request refused at submit (backpressure or open breaker)."""
        with self._lock:
            self.rejected += 1

    def record_shed(self) -> None:
        """Count one request refused by latency-aware load shedding."""
        with self._lock:
            self.shed += 1

    def record_deadline_miss(self) -> None:
        """Count one request whose deadline expired before execution."""
        with self._lock:
            self.deadline_misses += 1

    def record_retry(self) -> None:
        """Count one blast-radius re-execution of a failed batch's slice."""
        with self._lock:
            self.retries += 1

    def record_breaker_transition(self) -> None:
        """Count one circuit-breaker state change (trip, probe, close)."""
        with self._lock:
            self.breaker_transitions += 1

    def record_degraded(self) -> None:
        """Count one request answered by the digital fallback ladder."""
        with self._lock:
            self.degraded += 1

    def record_shard_crash(self) -> None:
        """Count one shard worker crash (caught by the last-resort handler)."""
        with self._lock:
            self.shard_crashes += 1

    def record_batch(self, size: int) -> None:
        """Count one executed batch of ``size`` requests."""
        with self._lock:
            self.batch_sizes[size] += 1

    def record_prepare(self, seconds: float) -> None:
        """Accumulate time spent programming macros (cache misses)."""
        with self._lock:
            self.prepare_s += seconds

    def record_stage(self, stage: str, seconds: float) -> None:
        """Accumulate one per-stage duration (queue, prepare, execute, ...).

        Fed by the :mod:`repro.obs` span-finish hook the service
        registers when tracing is enabled; with tracing off no stage
        data exists and the snapshot's ``stages`` stays empty.
        """
        with self._lock:
            self.stage_s.setdefault(stage, []).append(seconds)

    def record_done(self, latency_s: float, *, failed: bool = False) -> None:
        """Count one finished request and its submit-to-done latency."""
        with self._lock:
            if failed:
                self.failed += 1
            else:
                self.completed += 1
            self.latencies.append(latency_s)
            self.last_done_t = time.perf_counter()

    def snapshot(self, cache: CacheStats) -> ServiceMetrics:
        """Freeze current counters (plus aggregated cache stats)."""
        with self._lock:
            latencies = np.asarray(self.latencies, dtype=float)
            sizes = dict(self.batch_sizes)
            batches = sum(sizes.values())
            coalesced = sum(size * count for size, count in sizes.items())
            wall = (
                self.last_done_t - self.first_submit_t
                if self.first_submit_t is not None and self.last_done_t is not None
                else 0.0
            )
            stages = {}
            for stage, values in sorted(self.stage_s.items()):
                arr = np.asarray(values, dtype=float)
                stages[stage] = {
                    "count": int(arr.size),
                    "total_s": float(arr.sum()),
                    "mean_s": float(arr.mean()),
                    "p95_s": float(np.quantile(arr, 0.95)),
                    "max_s": float(arr.max()),
                }
            return ServiceMetrics(
                requests_submitted=self.submitted,
                requests_completed=self.completed,
                requests_failed=self.failed,
                requests_rejected=self.rejected,
                requests_shed=self.shed,
                deadline_misses=self.deadline_misses,
                retries=self.retries,
                breaker_transitions=self.breaker_transitions,
                degraded=self.degraded,
                shard_crashes=self.shard_crashes,
                batches_executed=batches,
                batch_size_histogram=sizes,
                mean_batch_size=coalesced / batches if batches else 0.0,
                latency_p50_s=float(np.quantile(latencies, 0.5)) if latencies.size else 0.0,
                latency_p95_s=float(np.quantile(latencies, 0.95)) if latencies.size else 0.0,
                latency_p99_s=float(np.quantile(latencies, 0.99)) if latencies.size else 0.0,
                latency_mean_s=float(latencies.mean()) if latencies.size else 0.0,
                latency_max_s=float(latencies.max()) if latencies.size else 0.0,
                throughput_rps=self.completed / wall if wall > 0.0 else 0.0,
                wall_s=wall,
                cache=cache,
                prepare_s=self.prepare_s,
                stages=stages,
            )
