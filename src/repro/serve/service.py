"""The solver service: sharded workers, bounded queues, micro-batching.

:class:`SolverService` accepts concurrent solve requests and executes
them at engine speed:

- requests are hash-sharded by **matrix digest** onto worker threads, so
  each prepared macro lives in exactly one shard's
  :class:`~repro.serve.cache.PreparedSolverCache` and is never touched
  by two threads at once;
- each worker coalesces queued requests that target the same prepared
  solver into one multi-RHS ``solve_many`` call (up to
  ``max_batch_size``, lingering up to ``max_linger_s`` for stragglers);
- queues are bounded: the ``block`` backpressure policy stalls
  submitters when a shard is saturated, ``reject`` raises
  :class:`~repro.errors.ServiceOverloadedError` immediately.

Failure story (knobs on :class:`~repro.serve.resilience.ResiliencePolicy`):

- per-request **deadlines** propagate submit → queue → batch; expired
  tickets fail fast with :class:`~repro.errors.DeadlineExceededError`
  instead of occupying a batch slot;
- latency-aware **load shedding** refuses submits whose estimated wait
  (shard backlog x recent per-request service time) exceeds the
  threshold, with a retry-after hint
  (:class:`~repro.errors.OverloadedError`);
- a per-:class:`~repro.serve.cache.PreparedKey` **circuit breaker**
  stops a key whose preparation or solves keep failing from dragging
  down its shard (tripping invalidates the cached entry, so the
  half-open probe re-prepares);
- **blast-radius isolation**: a failed coalesced batch is bisected and
  re-executed so only the culprit request fails; re-execution restarts
  from each request's own seed through the same canonical kernel, so
  surviving results stay bit-identical to the sequential reference;
- an opt-in **degradation ladder** (``fallback="digital"``) answers
  analog failures with the digital reference solve, tagged
  ``degraded=True``;
- the worker loop is **crash-proof**: a last-resort handler fails
  in-flight tickets with :class:`~repro.errors.ShardFailedError` and
  restarts the loop, up to ``max_shard_restarts`` times, after which
  the shard is marked dead and submits to it fail fast.

Determinism: every execution goes through the canonical kernel
(:func:`repro.serve.batching.execute_batch`) against entries whose
random draws were fixed at preparation time, so results are bit-identical
to :func:`run_sequential` over the same requests — regardless of worker
count, queue timing, how batches happened to form, or how many faulted
batches were bisected along the way.

This class is the **in-process, thread-sharded** tier (the engines are
NumPy-bound and release the GIL inside BLAS). The network tier —
:mod:`repro.serve.net` — serves the same requests over TCP through
**process-based** workers that escape the GIL entirely, reusing this
module's building blocks (:func:`resolve_request`, the prepared cache,
the micro-batcher, and :func:`~repro.serve.batching.execute_batch`), so
both tiers answer with identical bits.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from repro.amc.config import HardwareConfig
from repro.core.backend import get_backend
from repro.core.solution import SolveResult
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardFailedError,
)
from repro.obs import tracer as obs
from repro.serve.batching import MicroBatcher, execute_batch
from repro.serve.cache import (
    SOLVER_KINDS,
    CacheStats,
    PreparedKey,
    PreparedSolverCache,
    prepare_entry,
)
from repro.serve.metrics import MetricsRecorder, ServiceMetrics
from repro.serve.requests import SolveRequest
from repro.serve.resilience import (
    DEGRADABLE_ERRORS,
    CircuitBreaker,
    ResiliencePolicy,
    digital_fallback,
)

__all__ = [
    "ServiceConfig",
    "SolveTicket",
    "SolverService",
    "resolve_request",
    "run_sequential",
]

#: Idle-poll period of the worker loops (shutdown latency bound).
_POLL_S = 0.02

#: Lifecycle span name → metrics stage name: these spans feed the
#: per-stage latency breakdown in :class:`ServiceMetrics`.
_STAGE_SPANS = {
    "serve.queue": "queue",
    "serve.prepare": "prepare",
    "serve.execute": "execute",
    "serve.assemble": "assemble",
    "serve.kernel": "kernel",
}


def _stage_metrics_hook(recorder: MetricsRecorder):
    """Span-finish hook feeding stage durations into the recorder."""

    def hook(record: dict) -> None:
        stage = _STAGE_SPANS.get(record["name"])
        if stage is not None:
            recorder.record_stage(stage, record["duration_s"])

    return hook


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`SolverService`.

    Parameters
    ----------
    workers:
        Worker threads; also the shard count of the cache/queue fabric.
    max_batch_size:
        Most requests one coalesced ``solve_many`` call may carry.
    max_linger_s:
        How long a worker holds a formable batch open waiting for more
        requests to the same prepared solver. ``0`` disables lingering
        (batches still coalesce whatever is already queued).
    queue_depth:
        Bound of each shard's request queue. The owning worker holds at
        most another ``queue_depth`` of drained-but-unexecuted requests,
        so per-shard in-flight work is bounded by ~2x this value.
    backpressure:
        ``"block"`` stalls submitters while a shard queue is full;
        ``"reject"`` raises :class:`ServiceOverloadedError` instead.
    cache_capacity:
        Prepared solvers retained per shard (LRU beyond that).
    lean_results:
        Serve :class:`~repro.core.solution.LeanSolveResult` payloads
        (no per-step OpResult telemetry; same solution bits). Result
        assembly dominates service-side time at scale, so lean mode is
        the high-throughput setting; the default stays full-telemetry
        for interactive use.
    resilience:
        The failure-handling policy
        (:class:`~repro.serve.resilience.ResiliencePolicy`): deadlines,
        load shedding, circuit breakers, the digital fallback ladder,
        and the shard-restart budget.
    entry_transform:
        Optional hook applied to every freshly prepared
        :class:`~repro.serve.cache.PreparedEntry` before it enters the
        shard cache. This is the fault-injection seam
        (:func:`repro.testing.chaos.chaos_entry_transform` wraps the
        prepared solver); production configs leave it ``None``.
    trace_dir:
        Enables :mod:`repro.obs` tracing with spans exported to this
        directory. Process-global (the service configures the module
        tracer), inherited by ``repro.serve.net`` worker processes via
        this very config. ``None`` (default) leaves tracing untouched —
        hot paths pay one attribute lookup. Tracing never perturbs
        results: solves are bit-identical either way.
    backend:
        Array backend / precision tier for the *default* hardware
        (``"numpy"``, ``"numpy-f32"``, ``"torch"`` — see
        :mod:`repro.core.backend`). ``None`` keeps whatever tier
        ``default_hardware`` already carries. Requests that bring their
        own :class:`HardwareConfig` are unaffected: their config's own
        ``backend`` field wins.
    default_solver, default_hardware, default_prep_seed:
        Applied to requests that leave the corresponding field unset.
    """

    workers: int = 2
    max_batch_size: int = 16
    max_linger_s: float = 0.002
    queue_depth: int = 256
    backpressure: str = "block"
    cache_capacity: int = 32
    lean_results: bool = False
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    entry_transform: Callable | None = None
    trace_dir: str | None = None
    backend: str | None = None
    default_solver: str = "blockamc-1stage"
    default_hardware: HardwareConfig = field(
        default_factory=HardwareConfig.paper_variation
    )
    default_prep_seed: int = 0

    def __post_init__(self):
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch_size < 1:
            raise ServeError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_linger_s < 0.0:
            raise ServeError(f"max_linger_s must be >= 0, got {self.max_linger_s}")
        if self.queue_depth < 1:
            raise ServeError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.backpressure not in ("block", "reject"):
            raise ServeError(
                f"backpressure must be 'block' or 'reject', got {self.backpressure!r}"
            )
        if self.cache_capacity < 1:
            raise ServeError(f"cache_capacity must be >= 1, got {self.cache_capacity}")
        if not isinstance(self.resilience, ResiliencePolicy):
            raise ServeError(
                f"resilience must be a ResiliencePolicy, got {self.resilience!r}"
            )
        if self.entry_transform is not None and not callable(self.entry_transform):
            raise ServeError("entry_transform must be callable or None")
        if self.trace_dir is not None and not isinstance(
            self.trace_dir, (str, os.PathLike)
        ):
            raise ServeError(
                f"trace_dir must be a path or None, got {self.trace_dir!r}"
            )
        if self.default_solver not in SOLVER_KINDS:
            raise ServeError(
                f"unknown default_solver {self.default_solver!r}; "
                f"available: {sorted(SOLVER_KINDS)}"
            )
        if self.backend is not None:
            get_backend(self.backend)  # fail fast on unknown/unavailable tiers
            object.__setattr__(
                self,
                "default_hardware",
                self.default_hardware.with_(backend=self.backend),
            )


def resolve_request(
    request: SolveRequest, config: ServiceConfig
) -> tuple[PreparedKey, HardwareConfig]:
    """Apply service defaults and derive the request's cache identity.

    Shared by the thread service, the sequential reference, and the
    ``repro.serve.net`` process workers, so "which prepared macro
    answers this request" is one definition across every serving tier.
    """
    hardware = request.hardware if request.hardware is not None else config.default_hardware
    solver = request.solver if request.solver is not None else config.default_solver
    if solver not in SOLVER_KINDS:
        raise ServeError(f"unknown solver kind {solver!r}; available: {sorted(SOLVER_KINDS)}")
    prep_seed = (
        request.prep_seed if request.prep_seed is not None else config.default_prep_seed
    )
    key = PreparedKey(
        request.digest,
        hardware.cache_key(),
        solver,
        prep_seed,
        backend=hardware.backend,
    )
    return key, hardware


#: Backward-compatible private alias (pre-net internal name).
_resolve = resolve_request


class SolveTicket:
    """Handle to one submitted request (a thin Future wrapper)."""

    def __init__(
        self,
        request: SolveRequest,
        key: PreparedKey,
        hardware: HardwareConfig,
        deadline_s: float | None = None,
    ):
        self.request = request
        self.key = key
        self.hardware = hardware
        self.submitted_at = time.perf_counter()
        #: Effective deadline (request override or policy default).
        self.deadline_s = deadline_s
        self.deadline_at = (
            None if deadline_s is None else self.submitted_at + deadline_s
        )
        #: Root tracing span of this request (no-op when tracing is off).
        self.span = obs.NOOP_SPAN
        self._future: Future = Future()

    def result(self, timeout: float | None = None) -> SolveResult:
        """Block until the solve finishes; re-raises execution errors."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None):
        """The execution error, or ``None`` on success (blocks like result)."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        """True once a result or error is set."""
        return self._future.done()


class _Shard:
    """One worker's queue, cache, batcher, and failure-domain state."""

    def __init__(self, index: int, config: ServiceConfig):
        self.index = index
        self.queue: queue.Queue = queue.Queue(maxsize=config.queue_depth)
        self.cache = PreparedSolverCache(config.cache_capacity)
        self.batcher = MicroBatcher(config.max_batch_size)
        self.thread: threading.Thread | None = None
        #: Circuit breakers by PreparedKey (created lazily by the worker).
        self.breakers: dict[PreparedKey, CircuitBreaker] = {}
        self.breaker_lock = threading.Lock()
        #: Tickets of the batch currently executing (crash-rescue list).
        self.inflight: list[SolveTicket] = []
        #: EWMA of per-request service time; drives load-shedding estimates.
        self.service_ewma_s = 0.0
        #: Worker-loop crash count (bounded by max_shard_restarts).
        self.restarts = 0
        #: Set (under the submit lock) when the shard stops serving.
        self.dead = False

    def backlog(self) -> int:
        """Approximate in-flight request count (queue + batcher + executing)."""
        return self.queue.qsize() + len(self.batcher) + len(self.inflight)


class SolverService:
    """A batching, caching solve service over the AMC engines.

    Use as a context manager (or call :meth:`close`)::

        with SolverService(ServiceConfig(workers=2)) as service:
            tickets = [service.submit(matrix, b, seed=i) for i, b in enumerate(batch)]
            results = [t.result() for t in tickets]
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self._metrics = MetricsRecorder()
        if self.config.trace_dir is not None:
            obs.configure(trace_dir=self.config.trace_dir)
        # With tracing on, finished stage spans feed the per-stage
        # latency breakdown in ServiceMetrics (removed again at close).
        self._obs_hook = None
        if obs.active().enabled:
            self._obs_hook = _stage_metrics_hook(self._metrics)
            obs.active().add_finish_hook(self._obs_hook)
        self._closed = threading.Event()
        self._abort = threading.Event()
        # Serializes the closed-check against queue puts: close() flips
        # the flag under this lock, so once close() returns no submit can
        # slip a ticket into a queue its worker has already abandoned.
        # The dead flag of a crashed-out shard follows the same protocol.
        self._submit_lock = threading.Lock()
        self._shards = [_Shard(i, self.config) for i in range(self.config.workers)]
        for shard in self._shards:
            shard.thread = threading.Thread(
                target=self._worker_main,
                args=(shard,),
                name=f"repro-serve-{shard.index}",
                daemon=True,
            )
            shard.thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, matrix, b, **kwargs) -> SolveTicket:
        """Build a :class:`SolveRequest` and submit it.

        Keyword arguments pass through to :class:`SolveRequest`
        (``solver``, ``hardware``, ``seed``, ``prep_seed``,
        ``deadline_s``, ``digest``).
        """
        return self.submit_request(SolveRequest(matrix=matrix, b=b, **kwargs))

    def submit_request(self, request: SolveRequest) -> SolveTicket:
        """Queue one request; returns immediately with a ticket.

        Raises :class:`ServiceClosedError` after :meth:`close`;
        :class:`ServiceOverloadedError` when the owning shard's queue is
        full under the ``reject`` backpressure policy (under ``block``
        the call stalls until the shard drains);
        :class:`~repro.errors.OverloadedError` when latency-aware
        shedding refuses the request (with a retry-after hint);
        :class:`~repro.errors.CircuitOpenError` when the request's
        prepared solver is failing fast; and
        :class:`~repro.errors.ShardFailedError` when the owning shard
        has crashed out of its restart budget.
        """
        policy = self.config.resilience
        key, hardware = _resolve(request, self.config)
        deadline_s = (
            request.deadline_s if request.deadline_s is not None else policy.deadline_s
        )
        ticket = SolveTicket(request, key, hardware, deadline_s=deadline_s)
        shard = self._shards[key.shard(len(self._shards))]
        if shard.dead:
            raise ShardFailedError(
                f"shard {shard.index} is dead (crashed {shard.restarts} times); "
                "request refused"
            )
        with shard.breaker_lock:
            breaker = shard.breakers.get(key)
        if breaker is not None and breaker.is_open():
            self._metrics.record_rejected()
            raise CircuitOpenError(
                f"circuit breaker open for prepared solver {key.solver!r} "
                f"on matrix {key.matrix_digest[:12]}",
                retry_after_s=breaker.retry_after_s(),
            )
        if policy.shed_latency_s is not None:
            estimate = shard.backlog() * shard.service_ewma_s
            if estimate > policy.shed_latency_s:
                self._metrics.record_shed()
                raise OverloadedError(
                    f"shard {shard.index} estimated wait {estimate:.3f}s exceeds "
                    f"shed threshold {policy.shed_latency_s:.3f}s",
                    retry_after_s=estimate,
                )
        tracer = obs.active()
        if tracer.enabled:
            # Root of this request's span tree; lifecycle stages (queue
            # wait, prepare, execute, assemble) attach as children. The
            # span is backdated to the ticket's submit stamp so queue
            # wait is measured from the caller's perspective.
            ticket.span = tracer.start_span(
                "serve.request",
                attributes={
                    "digest": request.digest[:12],
                    "solver": key.solver,
                    "seed": request.seed,
                    "shard": shard.index,
                    "n": request.size,
                },
                start_s=ticket.submitted_at,
            )
        while True:
            with self._submit_lock:
                if self._closed.is_set():
                    error = ServiceClosedError(
                        "service is closed; no further requests accepted"
                    )
                    ticket.span.fail(error)
                    raise error
                try:
                    shard.queue.put_nowait(ticket)
                    break
                except queue.Full:
                    if self.config.backpressure == "reject":
                        self._metrics.record_rejected()
                        error = ServiceOverloadedError(
                            f"shard {shard.index} queue is full "
                            f"({self.config.queue_depth} requests pending)"
                        )
                        ticket.span.fail(error)
                        raise error from None
            # ``block`` policy: wait on the queue itself, outside the
            # lock, so the submitter wakes the moment the worker drains
            # a slot and close()/other shards' submitters stay live; the
            # timeout only bounds how often the closed flag is re-read.
            try:
                shard.queue.put(ticket, timeout=_POLL_S)
            except queue.Full:
                continue
            if self._closed.is_set():
                # This put bypassed the lock, so it may have landed after
                # the worker's final drain; wait the worker out and
                # rescue anything it can no longer see.
                if shard.thread is not None:
                    shard.thread.join()
                self._fail_pending(shard)
            break
        if shard.dead:
            # The worker may have crashed out between our put and its
            # final drain; wait it out and rescue stranded tickets.
            if shard.thread is not None:
                shard.thread.join()
            self._fail_pending(
                shard, ShardFailedError(f"shard {shard.index} died before execution")
            )
        self._metrics.record_submit()
        return ticket

    def solve_all(self, requests) -> list[SolveResult]:
        """Submit every request, then gather results in request order.

        If a submit fails partway (backpressure rejection, load
        shedding, an open breaker, a dead shard), the already-submitted
        tickets are waited out before the error re-raises, so no ticket
        leaks mid-flight; their individual outcomes are discarded.
        Callers who need partial results should submit and gather
        tickets themselves.
        """
        tickets: list[SolveTicket] = []
        try:
            for request in requests:
                tickets.append(self.submit_request(request))
        except BaseException:
            for ticket in tickets:
                ticket.exception()
            raise
        return [ticket.result() for ticket in tickets]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def metrics(self) -> ServiceMetrics:
        """Snapshot of service telemetry (aggregated across shards)."""
        cache = CacheStats()
        for shard in self._shards:
            cache = cache.merge(shard.cache.stats)
        return self._metrics.snapshot(cache)

    def cached_solvers(self) -> list[PreparedKey]:
        """Keys of every resident prepared solver, across all shards."""
        return [key for shard in self._shards for key in shard.cache.keys()]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests and shut the workers down.

        ``wait=True`` (default) lets workers drain everything already
        queued; ``wait=False`` aborts, failing still-pending tickets
        with :class:`ServiceClosedError`.
        """
        with self._submit_lock:
            self._closed.set()
        if not wait:
            self._abort.set()
        for shard in self._shards:
            if shard.thread is not None:
                shard.thread.join()
        if self._obs_hook is not None:
            obs.active().remove_finish_hook(self._obs_hook)
            self._obs_hook = None

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(wait=exc_info[0] is None)

    # ------------------------------------------------------------------
    # worker internals
    # ------------------------------------------------------------------
    def _worker_main(self, shard: _Shard) -> None:
        """Crash-proof wrapper: restart the loop, bounded; then die loudly.

        Any exception escaping :meth:`_worker_loop` — including
        ``BaseException``s that bypass the per-batch ``except Exception``
        handlers — fails the in-flight batch with
        :class:`~repro.errors.ShardFailedError` and re-enters the loop
        on this same thread (so :meth:`close` can still join it). After
        ``max_shard_restarts`` crashes the shard is marked dead: its
        pending tickets fail, and submits to it fail fast.
        """
        while True:
            try:
                self._worker_loop(shard)
                return
            except BaseException:
                self._metrics.record_shard_crash()
                error = ShardFailedError(
                    f"shard {shard.index} worker crashed while this request "
                    "was in flight"
                )
                inflight, shard.inflight = shard.inflight, []
                for ticket in inflight:
                    self._fail_ticket(ticket, error)
                shard.restarts += 1
                if (
                    self._closed.is_set()
                    or shard.restarts > self.config.resilience.max_shard_restarts
                ):
                    with self._submit_lock:
                        shard.dead = True
                    self._fail_pending(shard, error)
                    return

    def _worker_loop(self, shard: _Shard) -> None:
        batcher = shard.batcher
        while True:
            if self._abort.is_set():
                self._fail_pending(shard)
                return
            if not len(batcher):
                try:
                    batcher.add(shard.queue.get(timeout=_POLL_S))
                except queue.Empty:
                    if self._closed.is_set():
                        # Closed is flipped under the submit lock, so no
                        # put can follow it — but one may have raced the
                        # empty check above. Drain once more and only
                        # exit if truly nothing is left.
                        self._drain_queue(shard)
                        if not len(batcher):
                            return
                    continue
            self._drain_queue(shard)
            key = batcher.next_key()
            breaker = self._breaker_for(shard, key)
            if breaker is not None and not breaker.allow():
                self._fail_key_group(
                    shard,
                    key,
                    CircuitOpenError(
                        f"circuit breaker open for prepared solver {key.solver!r} "
                        f"on matrix {key.matrix_digest[:12]}",
                        retry_after_s=breaker.retry_after_s(),
                    ),
                )
                continue
            entry = self._entry_for(shard, key, breaker)
            if entry is None:
                continue
            if (
                entry.coalescible
                and self.config.max_linger_s > 0.0
                and batcher.pending_for(key) < self.config.max_batch_size
            ):
                self._linger(shard, key)
            batch = self._expire(batcher.take(key))
            if batch:
                shard.cache.credit_hits(len(batch) - 1)
                self._execute(shard, entry, batch, breaker)

    def _drain_queue(self, shard: _Shard) -> None:
        # The batcher backlog is bounded like the queue: once the worker
        # holds a full queue's worth it stops pulling, so ``queue_depth``
        # genuinely limits in-flight work (at most ~2x queue_depth per
        # shard between queue and batcher) and backpressure engages
        # instead of the backlog growing without bound.
        while len(shard.batcher) < self.config.queue_depth:
            try:
                shard.batcher.add(shard.queue.get_nowait())
            except queue.Empty:
                return

    def _linger(self, shard: _Shard, key: PreparedKey) -> None:
        """Hold the batch open briefly, hoping to coalesce stragglers."""
        deadline = time.perf_counter() + self.config.max_linger_s
        while (
            shard.batcher.pending_for(key) < self.config.max_batch_size
            and len(shard.batcher) < self.config.queue_depth
        ):
            remaining = deadline - time.perf_counter()
            if remaining <= 0.0 or self._abort.is_set():
                return
            try:
                shard.batcher.add(shard.queue.get(timeout=remaining))
            except queue.Empty:
                return

    def _breaker_for(self, shard: _Shard, key: PreparedKey) -> CircuitBreaker | None:
        """The key's circuit breaker, created lazily (None when disabled)."""
        policy = self.config.resilience
        if policy.breaker_threshold < 1:
            return None
        with shard.breaker_lock:
            breaker = shard.breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    policy.breaker_threshold,
                    policy.breaker_reset_s,
                    on_transition=self._metrics.record_breaker_transition,
                )
                shard.breakers[key] = breaker
            return breaker

    def _record_key_failure(
        self, shard: _Shard, key: PreparedKey, breaker: CircuitBreaker | None
    ) -> None:
        """Count one failure against the key's breaker; trip → drop the entry.

        Invalidating on trip makes the eventual half-open probe
        re-prepare from scratch instead of re-trying a possibly corrupt
        programmed macro.
        """
        if breaker is not None and breaker.record_failure():
            shard.cache.invalidate(key)

    def _entry_for(
        self, shard: _Shard, key: PreparedKey, breaker: CircuitBreaker | None = None
    ):
        head = shard.batcher.peek(key)

        def factory():
            entry = prepare_entry(key, head.request.matrix, head.hardware)
            self._metrics.record_prepare(entry.prepare_seconds)
            if self.config.entry_transform is not None:
                entry = self.config.entry_transform(entry)
            tracer = obs.active()
            if tracer.enabled:
                # Retroactive: bounds come from the measured prepare time,
                # so the untraced path performs no extra timing calls.
                now = time.perf_counter()
                tracer.record_span(
                    "serve.prepare",
                    parent=head.span,
                    start_s=now - entry.prepare_seconds,
                    end_s=now,
                    attributes={
                        "solver": key.solver,
                        "digest": key.matrix_digest[:12],
                    },
                )
            return entry

        try:
            return shard.cache.get_or_prepare(key, factory)
        except Exception as exc:  # fail the whole group, keep the worker alive
            self._record_key_failure(shard, key, breaker)
            self._fail_key_group(shard, key, exc)
            return None

    def _expire(self, batch: list[SolveTicket]) -> list[SolveTicket]:
        """Fail tickets whose deadline passed; return the live remainder."""
        live = []
        now = time.perf_counter()
        for ticket in batch:
            if ticket.deadline_at is not None and now >= ticket.deadline_at:
                self._metrics.record_deadline_miss()
                self._fail_ticket(
                    ticket,
                    DeadlineExceededError(
                        f"deadline of {ticket.deadline_s:.3f}s expired "
                        "before the request reached execution"
                    ),
                    now,
                )
            else:
                live.append(ticket)
        return live

    def _execute(
        self,
        shard: _Shard,
        entry,
        batch: list[SolveTicket],
        breaker: CircuitBreaker | None = None,
    ) -> None:
        shard.inflight = batch
        self._metrics.record_batch(len(batch))
        start = time.perf_counter()
        tracer = obs.active()
        batch_span = obs.NOOP_SPAN
        if tracer.enabled:
            # Queue-wait stages are retroactive (submit stamp → now), so
            # the untraced submit path stays untouched; the batch span
            # links its member requests by span id.
            for ticket in batch:
                tracer.record_span(
                    "serve.queue",
                    parent=ticket.span,
                    start_s=ticket.submitted_at,
                    end_s=start,
                )
            batch_span = tracer.start_span(
                "serve.batch",
                attributes={
                    "size": len(batch),
                    "solver": entry.key.solver,
                    "shard": shard.index,
                    "coalescible": entry.coalescible,
                    "members": [t.span.span_id for t in batch],
                },
                start_s=start,
            )
        try:
            if tracer.enabled:
                # Activation (not a `with Span`): the kernel span nests
                # under the batch, which ends later, after assembly.
                with tracer.use_span(batch_span):
                    results = execute_batch(
                        entry,
                        [t.request.b for t in batch],
                        [t.request.seed for t in batch],
                        lean=self.config.lean_results,
                    )
            else:
                results = execute_batch(
                    entry,
                    [t.request.b for t in batch],
                    [t.request.seed for t in batch],
                    lean=self.config.lean_results,
                )
        except Exception as exc:
            batch_span.fail(exc)
            self._isolate(shard, entry, batch, breaker)
        else:
            solved = time.perf_counter()
            now = time.perf_counter()
            for ticket, result in zip(batch, results):
                self._finish_ticket(ticket, result, now)
            if breaker is not None:
                breaker.record_success()
            if tracer.enabled:
                for ticket, result in zip(batch, results):
                    tracer.record_span(
                        "serve.execute",
                        parent=ticket.span,
                        start_s=start,
                        end_s=solved,
                        attributes={
                            "batch_span": batch_span.span_id,
                            "analog_time_s": float(
                                getattr(result, "analog_time_s", 0.0)
                            ),
                        },
                    )
                tracer.record_span(
                    "serve.assemble",
                    parent=batch_span,
                    start_s=solved,
                    end_s=time.perf_counter(),
                )
                batch_span.end()
        # Normal-path bookkeeping only: on a worker crash (BaseException)
        # the inflight list must survive for _worker_main's rescue.
        per_request = (time.perf_counter() - start) / len(batch)
        shard.service_ewma_s = (
            per_request
            if shard.service_ewma_s == 0.0
            else 0.8 * shard.service_ewma_s + 0.2 * per_request
        )
        shard.inflight = []

    def _isolate(
        self,
        shard: _Shard,
        entry,
        tickets: list[SolveTicket],
        breaker: CircuitBreaker | None,
    ) -> None:
        """Bisect a failed batch so only the culprit request(s) fail.

        Every re-execution restarts from each request's own seed through
        the same canonical kernel, so surviving results are bit-identical
        to the sequential reference by construction — isolation can
        never perturb a success, only rescue it.
        """
        if len(tickets) == 1:
            ticket = tickets[0]
            self._metrics.record_retry()
            try:
                result = execute_batch(
                    entry,
                    [ticket.request.b],
                    [ticket.request.seed],
                    lean=self.config.lean_results,
                )[0]
            except Exception as exc:
                self._degrade_or_fail(shard, entry, ticket, exc, breaker)
            else:
                self._finish_ticket(ticket, result)
                if breaker is not None:
                    breaker.record_success()
            return
        mid = len(tickets) // 2
        for half in (tickets[:mid], tickets[mid:]):
            self._metrics.record_retry()
            try:
                results = execute_batch(
                    entry,
                    [t.request.b for t in half],
                    [t.request.seed for t in half],
                    lean=self.config.lean_results,
                )
            except Exception:
                self._isolate(shard, entry, half, breaker)
            else:
                now = time.perf_counter()
                for ticket, result in zip(half, results):
                    self._finish_ticket(ticket, result, now)
                if breaker is not None:
                    breaker.record_success()

    def _degrade_or_fail(
        self,
        shard: _Shard,
        entry,
        ticket: SolveTicket,
        exc: Exception,
        breaker: CircuitBreaker | None,
    ) -> None:
        """Bottom of the ladder: digital fallback if allowed, else fail."""
        self._record_key_failure(shard, entry.key, breaker)
        policy = self.config.resilience
        if policy.fallback == "digital" and isinstance(exc, DEGRADABLE_ERRORS):
            try:
                result = digital_fallback(
                    ticket.request, lean=self.config.lean_results
                )
            except Exception as fallback_exc:
                self._fail_ticket(ticket, fallback_exc)
                return
            self._metrics.record_degraded()
            self._finish_ticket(ticket, result)
            return
        self._fail_ticket(ticket, exc)

    def _fail_key_group(self, shard: _Shard, key: PreparedKey, error) -> None:
        """Fail every ticket pending for ``key`` with ``error``."""
        while True:
            group = shard.batcher.take(key)
            if not group:
                return
            now = time.perf_counter()
            for ticket in group:
                self._fail_ticket(ticket, error, now)

    def _finish_ticket(self, ticket: SolveTicket, result, now=None) -> None:
        if ticket._future.done():
            return
        ticket._future.set_result(result)
        ticket.span.end()
        self._metrics.record_done(
            (now if now is not None else time.perf_counter()) - ticket.submitted_at
        )

    def _fail_ticket(self, ticket: SolveTicket, error, now=None) -> None:
        if ticket._future.done():
            return
        ticket._future.set_exception(error)
        ticket.span.fail(error)
        self._metrics.record_done(
            (now if now is not None else time.perf_counter()) - ticket.submitted_at,
            failed=True,
        )

    def _fail_pending(self, shard: _Shard, error=None) -> None:
        if error is None:
            error = ServiceClosedError("service aborted before this request executed")
        while True:
            # Unbounded drain: after abort/death no submits can add work,
            # so this terminates; every stranded ticket must resolve.
            try:
                shard.batcher.add(shard.queue.get_nowait())
            except queue.Empty:
                pass
            pending = shard.batcher.drain()
            if not pending and shard.queue.empty():
                return
            now = time.perf_counter()
            for ticket in pending:
                self._fail_ticket(ticket, error, now)


def run_sequential(
    requests, config: ServiceConfig | None = None
) -> tuple[list[SolveResult], ServiceMetrics]:
    """Sequential reference executor for the service's semantics.

    Runs the requests one at a time, in order, through the *same*
    prepared-solver cache and canonical execution kernel the service
    uses — no queues, no threads, no coalescing, and no resilience
    machinery (deadlines, breakers, and fallbacks are service policies,
    not part of the solve semantics). Service results are bit-identical
    to this reference for any scheduling outcome, which is what the
    service tests and ``benchmarks/bench_serving.py`` assert.
    Returns ``(results, metrics)``; the metrics cover cache behaviour
    and throughput of the loop itself.
    """
    config = config or ServiceConfig()
    cache = PreparedSolverCache(config.cache_capacity)
    recorder = MetricsRecorder()
    results: list[SolveResult] = []
    for request in requests:
        key, hardware = _resolve(request, config)
        recorder.record_submit()
        start = time.perf_counter()

        def factory(key=key, request=request, hardware=hardware):
            entry = prepare_entry(key, request.matrix, hardware)
            recorder.record_prepare(entry.prepare_seconds)
            return entry

        entry = cache.get_or_prepare(key, factory)
        recorder.record_batch(1)
        results.append(
            execute_batch(
                entry, [request.b], [request.seed], lean=config.lean_results
            )[0]
        )
        recorder.record_done(time.perf_counter() - start)
    return results, recorder.snapshot(cache.stats)
