"""The solver service: sharded workers, bounded queues, micro-batching.

:class:`SolverService` accepts concurrent solve requests and executes
them at engine speed:

- requests are hash-sharded by **matrix digest** onto worker threads, so
  each prepared macro lives in exactly one shard's
  :class:`~repro.serve.cache.PreparedSolverCache` and is never touched
  by two threads at once;
- each worker coalesces queued requests that target the same prepared
  solver into one multi-RHS ``solve_many`` call (up to
  ``max_batch_size``, lingering up to ``max_linger_s`` for stragglers);
- queues are bounded: the ``block`` backpressure policy stalls
  submitters when a shard is saturated, ``reject`` raises
  :class:`~repro.errors.ServiceOverloadedError` immediately.

Determinism: every execution goes through the canonical kernel
(:func:`repro.serve.batching.execute_batch`) against entries whose
random draws were fixed at preparation time, so results are bit-identical
to :func:`run_sequential` over the same requests — regardless of worker
count, queue timing, or how batches happened to form.

The service is in-process by design (the engines are NumPy-bound and
release the GIL inside BLAS); a network front-end can wrap
:meth:`SolverService.submit` without touching the scheduling core.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.amc.config import HardwareConfig
from repro.core.solution import SolveResult
from repro.errors import ServeError, ServiceClosedError, ServiceOverloadedError
from repro.serve.batching import MicroBatcher, execute_batch
from repro.serve.cache import (
    SOLVER_KINDS,
    CacheStats,
    PreparedKey,
    PreparedSolverCache,
    prepare_entry,
)
from repro.serve.metrics import MetricsRecorder, ServiceMetrics
from repro.serve.requests import SolveRequest

__all__ = ["ServiceConfig", "SolveTicket", "SolverService", "run_sequential"]

#: Idle-poll period of the worker loops (shutdown latency bound).
_POLL_S = 0.02


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`SolverService`.

    Parameters
    ----------
    workers:
        Worker threads; also the shard count of the cache/queue fabric.
    max_batch_size:
        Most requests one coalesced ``solve_many`` call may carry.
    max_linger_s:
        How long a worker holds a formable batch open waiting for more
        requests to the same prepared solver. ``0`` disables lingering
        (batches still coalesce whatever is already queued).
    queue_depth:
        Bound of each shard's request queue. The owning worker holds at
        most another ``queue_depth`` of drained-but-unexecuted requests,
        so per-shard in-flight work is bounded by ~2x this value.
    backpressure:
        ``"block"`` stalls submitters while a shard queue is full;
        ``"reject"`` raises :class:`ServiceOverloadedError` instead.
    cache_capacity:
        Prepared solvers retained per shard (LRU beyond that).
    lean_results:
        Serve :class:`~repro.core.solution.LeanSolveResult` payloads
        (no per-step OpResult telemetry; same solution bits). Result
        assembly dominates service-side time at scale, so lean mode is
        the high-throughput setting; the default stays full-telemetry
        for interactive use.
    default_solver, default_hardware, default_prep_seed:
        Applied to requests that leave the corresponding field unset.
    """

    workers: int = 2
    max_batch_size: int = 16
    max_linger_s: float = 0.002
    queue_depth: int = 256
    backpressure: str = "block"
    cache_capacity: int = 32
    lean_results: bool = False
    default_solver: str = "blockamc-1stage"
    default_hardware: HardwareConfig = field(
        default_factory=HardwareConfig.paper_variation
    )
    default_prep_seed: int = 0

    def __post_init__(self):
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch_size < 1:
            raise ServeError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_linger_s < 0.0:
            raise ServeError(f"max_linger_s must be >= 0, got {self.max_linger_s}")
        if self.queue_depth < 1:
            raise ServeError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.backpressure not in ("block", "reject"):
            raise ServeError(
                f"backpressure must be 'block' or 'reject', got {self.backpressure!r}"
            )
        if self.cache_capacity < 1:
            raise ServeError(f"cache_capacity must be >= 1, got {self.cache_capacity}")
        if self.default_solver not in SOLVER_KINDS:
            raise ServeError(
                f"unknown default_solver {self.default_solver!r}; "
                f"available: {sorted(SOLVER_KINDS)}"
            )


def _resolve(request: SolveRequest, config: ServiceConfig) -> tuple[PreparedKey, HardwareConfig]:
    """Apply service defaults and derive the request's cache identity."""
    hardware = request.hardware if request.hardware is not None else config.default_hardware
    solver = request.solver if request.solver is not None else config.default_solver
    if solver not in SOLVER_KINDS:
        raise ServeError(f"unknown solver kind {solver!r}; available: {sorted(SOLVER_KINDS)}")
    prep_seed = (
        request.prep_seed if request.prep_seed is not None else config.default_prep_seed
    )
    return PreparedKey(request.digest, hardware.cache_key(), solver, prep_seed), hardware


class SolveTicket:
    """Handle to one submitted request (a thin Future wrapper)."""

    def __init__(self, request: SolveRequest, key: PreparedKey, hardware: HardwareConfig):
        self.request = request
        self.key = key
        self.hardware = hardware
        self.submitted_at = time.perf_counter()
        self._future: Future = Future()

    def result(self, timeout: float | None = None) -> SolveResult:
        """Block until the solve finishes; re-raises execution errors."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None):
        """The execution error, or ``None`` on success (blocks like result)."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        """True once a result or error is set."""
        return self._future.done()


class _Shard:
    """One worker's queue, cache, and batcher."""

    def __init__(self, index: int, config: ServiceConfig):
        self.index = index
        self.queue: queue.Queue = queue.Queue(maxsize=config.queue_depth)
        self.cache = PreparedSolverCache(config.cache_capacity)
        self.batcher = MicroBatcher(config.max_batch_size)
        self.thread: threading.Thread | None = None


class SolverService:
    """A batching, caching solve service over the AMC engines.

    Use as a context manager (or call :meth:`close`)::

        with SolverService(ServiceConfig(workers=2)) as service:
            tickets = [service.submit(matrix, b, seed=i) for i, b in enumerate(batch)]
            results = [t.result() for t in tickets]
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self._metrics = MetricsRecorder()
        self._closed = threading.Event()
        self._abort = threading.Event()
        # Serializes the closed-check against queue puts: close() flips
        # the flag under this lock, so once close() returns no submit can
        # slip a ticket into a queue its worker has already abandoned.
        self._submit_lock = threading.Lock()
        self._shards = [_Shard(i, self.config) for i in range(self.config.workers)]
        for shard in self._shards:
            shard.thread = threading.Thread(
                target=self._worker_loop,
                args=(shard,),
                name=f"repro-serve-{shard.index}",
                daemon=True,
            )
            shard.thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, matrix, b, **kwargs) -> SolveTicket:
        """Build a :class:`SolveRequest` and submit it.

        Keyword arguments pass through to :class:`SolveRequest`
        (``solver``, ``hardware``, ``seed``, ``prep_seed``, ``digest``).
        """
        return self.submit_request(SolveRequest(matrix=matrix, b=b, **kwargs))

    def submit_request(self, request: SolveRequest) -> SolveTicket:
        """Queue one request; returns immediately with a ticket.

        Raises :class:`ServiceClosedError` after :meth:`close`, and
        :class:`ServiceOverloadedError` when the owning shard's queue is
        full under the ``reject`` backpressure policy (under ``block``
        the call stalls until the shard drains).
        """
        key, hardware = _resolve(request, self.config)
        ticket = SolveTicket(request, key, hardware)
        shard = self._shards[key.shard(len(self._shards))]
        while True:
            with self._submit_lock:
                if self._closed.is_set():
                    raise ServiceClosedError(
                        "service is closed; no further requests accepted"
                    )
                try:
                    shard.queue.put_nowait(ticket)
                    break
                except queue.Full:
                    if self.config.backpressure == "reject":
                        self._metrics.record_rejected()
                        raise ServiceOverloadedError(
                            f"shard {shard.index} queue is full "
                            f"({self.config.queue_depth} requests pending)"
                        ) from None
            # ``block`` policy: wait on the queue itself, outside the
            # lock, so the submitter wakes the moment the worker drains
            # a slot and close()/other shards' submitters stay live; the
            # timeout only bounds how often the closed flag is re-read.
            try:
                shard.queue.put(ticket, timeout=_POLL_S)
            except queue.Full:
                continue
            if self._closed.is_set():
                # This put bypassed the lock, so it may have landed after
                # the worker's final drain; wait the worker out and
                # rescue anything it can no longer see.
                if shard.thread is not None:
                    shard.thread.join()
                self._fail_pending(shard)
            break
        self._metrics.record_submit()
        return ticket

    def solve_all(self, requests) -> list[SolveResult]:
        """Submit every request, then gather results in request order."""
        tickets = [self.submit_request(r) for r in requests]
        return [t.result() for t in tickets]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def metrics(self) -> ServiceMetrics:
        """Snapshot of service telemetry (aggregated across shards)."""
        cache = CacheStats()
        for shard in self._shards:
            cache = cache.merge(shard.cache.stats)
        return self._metrics.snapshot(cache)

    def cached_solvers(self) -> list[PreparedKey]:
        """Keys of every resident prepared solver, across all shards."""
        return [key for shard in self._shards for key in shard.cache.keys()]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests and shut the workers down.

        ``wait=True`` (default) lets workers drain everything already
        queued; ``wait=False`` aborts, failing still-pending tickets
        with :class:`ServiceClosedError`.
        """
        with self._submit_lock:
            self._closed.set()
        if not wait:
            self._abort.set()
        for shard in self._shards:
            if shard.thread is not None:
                shard.thread.join()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(wait=exc_info[0] is None)

    # ------------------------------------------------------------------
    # worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self, shard: _Shard) -> None:
        batcher = shard.batcher
        while True:
            if self._abort.is_set():
                self._fail_pending(shard)
                return
            if not len(batcher):
                try:
                    batcher.add(shard.queue.get(timeout=_POLL_S))
                except queue.Empty:
                    if self._closed.is_set():
                        # Closed is flipped under the submit lock, so no
                        # put can follow it — but one may have raced the
                        # empty check above. Drain once more and only
                        # exit if truly nothing is left.
                        self._drain_queue(shard)
                        if not len(batcher):
                            return
                    continue
            self._drain_queue(shard)
            key = batcher.next_key()
            entry = self._entry_for(shard, key)
            if entry is None:
                continue
            if (
                entry.coalescible
                and self.config.max_linger_s > 0.0
                and batcher.pending_for(key) < self.config.max_batch_size
            ):
                self._linger(shard, key)
            batch = batcher.take(key)
            if batch:
                shard.cache.credit_hits(len(batch) - 1)
                self._execute(entry, batch)

    def _drain_queue(self, shard: _Shard) -> None:
        # The batcher backlog is bounded like the queue: once the worker
        # holds a full queue's worth it stops pulling, so ``queue_depth``
        # genuinely limits in-flight work (at most ~2x queue_depth per
        # shard between queue and batcher) and backpressure engages
        # instead of the backlog growing without bound.
        while len(shard.batcher) < self.config.queue_depth:
            try:
                shard.batcher.add(shard.queue.get_nowait())
            except queue.Empty:
                return

    def _linger(self, shard: _Shard, key: PreparedKey) -> None:
        """Hold the batch open briefly, hoping to coalesce stragglers."""
        deadline = time.perf_counter() + self.config.max_linger_s
        while (
            shard.batcher.pending_for(key) < self.config.max_batch_size
            and len(shard.batcher) < self.config.queue_depth
        ):
            remaining = deadline - time.perf_counter()
            if remaining <= 0.0 or self._abort.is_set():
                return
            try:
                shard.batcher.add(shard.queue.get(timeout=remaining))
            except queue.Empty:
                return

    def _entry_for(self, shard: _Shard, key: PreparedKey):
        head = shard.batcher.peek(key)

        def factory():
            entry = prepare_entry(key, head.request.matrix, head.hardware)
            self._metrics.record_prepare(entry.prepare_seconds)
            return entry

        try:
            return shard.cache.get_or_prepare(key, factory)
        except Exception as exc:  # fail the whole group, keep the worker alive
            now = time.perf_counter()
            for ticket in shard.batcher.take(key):
                ticket._future.set_exception(exc)
                self._metrics.record_done(now - ticket.submitted_at, failed=True)
            return None

    def _execute(self, entry, batch: list[SolveTicket]) -> None:
        self._metrics.record_batch(len(batch))
        try:
            results = execute_batch(
                entry,
                [t.request.b for t in batch],
                [t.request.seed for t in batch],
                lean=self.config.lean_results,
            )
        except Exception as exc:
            now = time.perf_counter()
            for ticket in batch:
                ticket._future.set_exception(exc)
                self._metrics.record_done(now - ticket.submitted_at, failed=True)
            return
        now = time.perf_counter()
        for ticket, result in zip(batch, results):
            ticket._future.set_result(result)
            self._metrics.record_done(now - ticket.submitted_at)

    def _fail_pending(self, shard: _Shard) -> None:
        error = ServiceClosedError("service aborted before this request executed")
        while True:
            # Unbounded drain: after abort no submits can add work, so
            # this terminates; every stranded ticket must resolve.
            try:
                shard.batcher.add(shard.queue.get_nowait())
            except queue.Empty:
                pass
            pending = shard.batcher.drain()
            if not pending and shard.queue.empty():
                return
            now = time.perf_counter()
            for ticket in pending:
                ticket._future.set_exception(error)
                self._metrics.record_done(now - ticket.submitted_at, failed=True)


def run_sequential(
    requests, config: ServiceConfig | None = None
) -> tuple[list[SolveResult], ServiceMetrics]:
    """Sequential reference executor for the service's semantics.

    Runs the requests one at a time, in order, through the *same*
    prepared-solver cache and canonical execution kernel the service
    uses — no queues, no threads, no coalescing. Service results are
    bit-identical to this reference for any scheduling outcome, which is
    what the service tests and ``benchmarks/bench_serving.py`` assert.
    Returns ``(results, metrics)``; the metrics cover cache behaviour
    and throughput of the loop itself.
    """
    config = config or ServiceConfig()
    cache = PreparedSolverCache(config.cache_capacity)
    recorder = MetricsRecorder()
    results: list[SolveResult] = []
    for request in requests:
        key, hardware = _resolve(request, config)
        recorder.record_submit()
        start = time.perf_counter()

        def factory(key=key, request=request, hardware=hardware):
            entry = prepare_entry(key, request.matrix, hardware)
            recorder.record_prepare(entry.prepare_seconds)
            return entry

        entry = cache.get_or_prepare(key, factory)
        recorder.record_batch(1)
        results.append(
            execute_batch(
                entry, [request.b], [request.seed], lean=config.lean_results
            )[0]
        )
        recorder.record_done(time.perf_counter() - start)
    return results, recorder.snapshot(cache.stats)
