"""``repro.serve`` — a batching, caching solver service over the AMC engines.

The paper positions AMC as a fast seed/preconditioner service for
digital solvers; this package is the traffic-facing layer that makes the
repo's batched primitives actually *serve*: a content-addressed cache of
programmed macros (:class:`PreparedSolverCache`), a micro-batching
scheduler that coalesces concurrent requests into multi-RHS solves, a
sharded worker pool with bounded queues and backpressure
(:class:`SolverService`), and service metrics (:class:`ServiceMetrics`).

Entry points: :class:`SolverService` / :class:`ServiceConfig` for the
concurrent service, :class:`ResiliencePolicy` for the failure-handling
knobs (deadlines, shedding, breakers, the digital fallback ladder),
:func:`run_sequential` for the bit-identical sequential reference,
:mod:`repro.serve.net` for the TCP front-end with process-based workers
(same request semantics, identical bits, over the wire),
``repro serve`` / ``repro submit`` on the CLI,
``examples/solver_service.py`` for a demo, and
``benchmarks/bench_serving.py`` / ``benchmarks/bench_resilience.py`` /
``benchmarks/bench_net_serving.py`` for the throughput and
fault-tolerance artifacts.
"""

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    QuotaExceededError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardFailedError,
    UnknownDigestError,
    WireProtocolError,
)
from repro.serve.batching import MicroBatcher, execute_batch
from repro.serve.cache import (
    SOLVER_KINDS,
    CacheStats,
    PreparedEntry,
    PreparedKey,
    PreparedSolverCache,
    prepare_entry,
)
from repro.serve.metrics import MetricsRecorder, ServiceMetrics
from repro.serve.requests import SolveRequest, matrix_digest
from repro.serve.resilience import (
    DEGRADABLE_ERRORS,
    CircuitBreaker,
    ResiliencePolicy,
    digital_fallback,
)
from repro.serve.service import (
    ServiceConfig,
    SolveTicket,
    SolverService,
    run_sequential,
)

__all__ = [
    "DEGRADABLE_ERRORS",
    "SOLVER_KINDS",
    "CacheStats",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "MetricsRecorder",
    "MicroBatcher",
    "OverloadedError",
    "PreparedEntry",
    "PreparedKey",
    "PreparedSolverCache",
    "QuotaExceededError",
    "ResiliencePolicy",
    "ServeError",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "ShardFailedError",
    "SolveRequest",
    "SolveTicket",
    "SolverService",
    "UnknownDigestError",
    "WireProtocolError",
    "digital_fallback",
    "execute_batch",
    "matrix_digest",
    "prepare_entry",
    "run_sequential",
]
