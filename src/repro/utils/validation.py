"""Argument validation helpers.

Every public entry point of the library validates its inputs through these
helpers so error messages are consistent and tests can rely on
:class:`~repro.errors.ValidationError` being raised for bad input.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.errors import ValidationError


def _coerce_dtype(value, preserve_dtype: bool) -> np.ndarray:
    """Float coercion shared by the array checkers.

    Default: everything becomes float64 (the historical behaviour).
    With ``preserve_dtype=True`` a float32 input stays float32 — the
    opt-in used by dtype-aware entry points (the serve layer's
    :class:`~repro.serve.requests.SolveRequest`) so precision tiers
    survive validation; every other dtype still coerces to float64.
    """
    arr = np.asarray(value)
    if preserve_dtype and arr.dtype == np.float32:
        return arr
    return np.asarray(arr, dtype=float)


def check_matrix(value, name: str = "matrix", *, preserve_dtype: bool = False) -> np.ndarray:
    """Coerce ``value`` to a finite 2-D float array.

    Parameters
    ----------
    value:
        Anything ``numpy.asarray`` accepts.
    name:
        Argument name used in error messages.
    preserve_dtype:
        Keep float32 input at float32 instead of upcasting (all other
        dtypes still coerce to float64).

    Returns
    -------
    numpy.ndarray
        A float 2-D array (a copy only if coercion required one).
    """
    arr = _coerce_dtype(value, preserve_dtype)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    return arr


def check_square_matrix(
    value, name: str = "matrix", *, preserve_dtype: bool = False
) -> np.ndarray:
    """Like :func:`check_matrix` but additionally requires a square shape."""
    arr = check_matrix(value, name, preserve_dtype=preserve_dtype)
    rows, cols = arr.shape
    if rows != cols:
        raise ValidationError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_vector(
    value,
    name: str = "vector",
    size: int | None = None,
    *,
    preserve_dtype: bool = False,
) -> np.ndarray:
    """Coerce ``value`` to a finite 1-D float array, optionally of length ``size``."""
    arr = _coerce_dtype(value, preserve_dtype)
    if arr.ndim == 2 and 1 in arr.shape:
        arr = arr.ravel()
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    if size is not None and arr.size != size:
        raise ValidationError(f"{name} must have length {size}, got {arr.size}")
    return arr


def check_positive(value, name: str = "value", allow_inf: bool = False) -> float:
    """Require a strictly positive scalar and return it as float.

    ``allow_inf=True`` accepts ``+inf`` (used by idealized hardware
    parameters such as infinite op-amp gain); NaN is always rejected.
    """
    if not isinstance(value, numbers.Real):
        raise ValidationError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if np.isnan(value) or value <= 0.0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not allow_inf and np.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    return value


def check_in_range(
    value,
    low: float,
    high: float,
    name: str = "value",
    inclusive: bool = True,
) -> float:
    """Require ``low <= value <= high`` (or strict bounds) and return float."""
    if not isinstance(value, numbers.Real):
        raise ValidationError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ValidationError(f"{name} must lie in {bounds}, got {value}")
    return value


def check_probability(value, name: str = "probability") -> float:
    """Require a scalar in [0, 1]."""
    return check_in_range(value, 0.0, 1.0, name=name, inclusive=True)
