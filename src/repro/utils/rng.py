"""Deterministic random-number fan-out.

Monte-Carlo sweeps (40 variation trials per matrix size, per the paper) need
independent, reproducible randomness per trial and per array. We wrap
``numpy.random.Generator`` with helpers that spawn child generators from a
parent seed without statistical overlap (via ``SeedSequence.spawn``).
"""

from __future__ import annotations

import numpy as np


def as_generator(seed) -> np.random.Generator:
    """Coerce ``seed`` (None, int, SeedSequence, or Generator) to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators.

    If ``seed`` is already a Generator its internal bit generator's seed
    sequence is spawned, so children remain reproducible given the parent.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RngStream:
    """A named, hierarchical stream of generators.

    Every call to :meth:`child` derives a fresh independent generator, and
    the derivation is a pure function of the root seed and the call order,
    so entire experiments replay bit-exactly from a single integer seed.

    Examples
    --------
    >>> stream = RngStream(1234)
    >>> g1 = stream.child()
    >>> g2 = stream.child()
    >>> float(g1.random()) != float(g2.random())
    True
    """

    def __init__(self, seed=None):
        if isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        elif isinstance(seed, np.random.Generator):
            self._seq = seed.bit_generator.seed_seq
        else:
            self._seq = np.random.SeedSequence(seed)
        self._spawned = 0

    @property
    def spawned(self) -> int:
        """Number of children handed out so far."""
        return self._spawned

    def child(self) -> np.random.Generator:
        """Return the next independent child generator."""
        (child_seq,) = self._seq.spawn(1)
        self._spawned += 1
        return np.random.default_rng(child_seq)

    def substream(self) -> "RngStream":
        """Return a child :class:`RngStream` (for nested experiment levels)."""
        (child_seq,) = self._seq.spawn(1)
        self._spawned += 1
        return RngStream(child_seq)
