"""Shared utilities: argument validation, linear-algebra helpers, RNG fan-out."""

from repro.utils.linalg import (
    block_join,
    block_split,
    condition_number,
    is_square,
    relative_l2_error,
    schur_complement,
)
from repro.utils.rng import RngStream, as_generator, spawn_generators
from repro.utils.validation import (
    check_in_range,
    check_matrix,
    check_positive,
    check_probability,
    check_square_matrix,
    check_vector,
)

__all__ = [
    "RngStream",
    "as_generator",
    "block_join",
    "block_split",
    "check_in_range",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_square_matrix",
    "check_vector",
    "condition_number",
    "is_square",
    "relative_l2_error",
    "schur_complement",
    "spawn_generators",
]
