"""Small linear-algebra helpers used across the library.

These wrap the handful of block-matrix identities the BlockAMC algorithm
relies on (2x2 block split/join and the Schur complement), plus norms used
by analysis code.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError, ValidationError
from repro.utils.validation import check_square_matrix, check_vector


def is_square(matrix: np.ndarray) -> bool:
    """Return True when ``matrix`` is 2-D with equal dimensions."""
    matrix = np.asarray(matrix)
    return matrix.ndim == 2 and matrix.shape[0] == matrix.shape[1]


def block_split(matrix: np.ndarray, split: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a square matrix into the four blocks used by BlockAMC.

    Parameters
    ----------
    matrix:
        Square ``n x n`` matrix.
    split:
        Size ``k`` of the leading block ``A1`` (``0 < k < n``).

    Returns
    -------
    tuple
        ``(A1, A2, A3, A4)`` with shapes ``(k,k), (k,n-k), (n-k,k), (n-k,n-k)``.
    """
    matrix = check_square_matrix(matrix)
    n = matrix.shape[0]
    if not 0 < split < n:
        raise PartitionError(f"split must satisfy 0 < split < {n}, got {split}")
    a1 = matrix[:split, :split]
    a2 = matrix[:split, split:]
    a3 = matrix[split:, :split]
    a4 = matrix[split:, split:]
    return a1, a2, a3, a4


def block_join(a1: np.ndarray, a2: np.ndarray, a3: np.ndarray, a4: np.ndarray) -> np.ndarray:
    """Inverse of :func:`block_split`: reassemble four blocks into one matrix."""
    a1 = np.asarray(a1, dtype=float)
    a2 = np.asarray(a2, dtype=float)
    a3 = np.asarray(a3, dtype=float)
    a4 = np.asarray(a4, dtype=float)
    if a1.shape[0] != a2.shape[0] or a3.shape[0] != a4.shape[0]:
        raise PartitionError("row counts of (A1,A2) and of (A3,A4) must match")
    if a1.shape[1] != a3.shape[1] or a2.shape[1] != a4.shape[1]:
        raise PartitionError("column counts of (A1,A3) and of (A2,A4) must match")
    return np.block([[a1, a2], [a3, a4]])


def schur_complement(a1: np.ndarray, a2: np.ndarray, a3: np.ndarray, a4: np.ndarray) -> np.ndarray:
    """Schur complement ``A4s = A4 - A3 A1^-1 A2`` of the leading block.

    Raises
    ------
    PartitionError
        If ``A1`` is numerically singular (the BlockAMC partition requires
        an invertible leading block).
    """
    a1 = check_square_matrix(a1, "A1")
    try:
        inv_a1_a2 = np.linalg.solve(a1, a2)
    except np.linalg.LinAlgError as exc:
        raise PartitionError("leading block A1 is singular; choose another split") from exc
    return np.asarray(a4, dtype=float) - np.asarray(a3, dtype=float) @ inv_a1_a2


def embed_complex_system(matrix: np.ndarray, rhs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Embed a complex linear system into an equivalent real one.

    ``(R + jI)(x_r + j x_i) = b_r + j b_i`` becomes::

        [ R  -I ] [ x_r ]   [ b_r ]
        [ I   R ] [ x_i ] = [ b_i ]

    which AMC hardware (real conductances) can solve directly — the
    standard trick for complex workloads such as massive-MIMO precoding
    (the application the authors' prior work [9] targets). Use
    :func:`extract_complex_solution` to fold the solution back.
    """
    matrix = np.asarray(matrix, dtype=complex)
    rhs = np.asarray(rhs, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"matrix must be square, got shape {matrix.shape}")
    if rhs.ndim != 1 or rhs.size != matrix.shape[0]:
        raise ValidationError(f"rhs must have length {matrix.shape[0]}")
    real, imag = matrix.real, matrix.imag
    embedded = np.block([[real, -imag], [imag, real]])
    stacked = np.concatenate([rhs.real, rhs.imag])
    return embedded, stacked


def extract_complex_solution(solution: np.ndarray) -> np.ndarray:
    """Inverse of :func:`embed_complex_system` on the solution vector."""
    solution = check_vector(solution, "solution")
    if solution.size % 2 != 0:
        raise ValidationError("embedded solution must have even length")
    half = solution.size // 2
    return solution[:half] + 1j * solution[half:]


def condition_number(matrix: np.ndarray) -> float:
    """2-norm condition number, ``inf`` for singular matrices."""
    matrix = check_square_matrix(matrix)
    return float(np.linalg.cond(matrix, 2))


def relative_l2_error(reference: np.ndarray, actual: np.ndarray) -> float:
    """``||actual - reference||_2 / ||reference||_2`` with a zero-safe guard."""
    reference = check_vector(reference, "reference")
    actual = check_vector(actual, "actual", size=reference.size)
    denom = float(np.linalg.norm(reference))
    if denom == 0.0:
        raise ValidationError("reference vector must be non-zero")
    return float(np.linalg.norm(actual - reference) / denom)
