"""Exception hierarchy for the BlockAMC reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses mark the subsystem that raised them; each carries a
human-readable message describing which constraint was violated.

Every class also carries a ``retryable`` flag: ``True`` marks transient
conditions where re-submitting the *same* request later may succeed
(overload, deadline pressure, an open circuit breaker, a crashed
worker); ``False`` marks deterministic failures that will recur until
the request itself changes (bad arguments, a singular system, a
non-convergent configuration). :func:`is_retryable` extends the
classification to the stdlib faults the campaign runner retries
(``BrokenProcessPool`` worker crashes).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library.

    ``retryable`` is a class-level classification: ``True`` when the
    failure is transient and retrying the identical request can
    succeed, ``False`` when it is deterministic for that request.
    """

    retryable = False


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, dtype, range, ...)."""


class BackendError(ReproError):
    """An array backend is unknown or unavailable in this environment."""


class DeviceError(ReproError):
    """A device model constraint was violated (conductance range, levels)."""


class ProgrammingError(DeviceError):
    """Write-and-verify programming could not reach the target conductance."""


class MappingError(ReproError):
    """A matrix could not be mapped onto a crossbar array."""


class CircuitError(ReproError):
    """The circuit netlist is malformed or cannot be solved."""


class SingularCircuitError(CircuitError):
    """The MNA system is singular (floating node, broken feedback, ...)."""


class ConvergenceError(ReproError):
    """An iterative routine failed to converge within its iteration budget."""


class PartitionError(ReproError):
    """A block partition request is invalid for the given matrix."""


class SolverError(ReproError):
    """A solver could not produce a solution (singular block, saturation)."""


class ScheduleError(ReproError):
    """The macro scheduler was asked to do something the hardware cannot."""


class CostModelError(ReproError):
    """The area/power model received an unknown component or architecture."""


class ServeError(ReproError):
    """The solver service could not accept or execute a request."""


class OverloadedError(ServeError):
    """The service shed a request it could not absorb (transient — retry later).

    ``retry_after_s`` is a hint: the submitter's estimated wait (from
    backlog and recent per-request service time) when latency-aware
    shedding refused the request, or ``None`` when no estimate applies.
    """

    retryable = True

    def __init__(self, message: str, *, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceOverloadedError(OverloadedError):
    """A bounded request queue was full under the ``reject`` backpressure policy."""


class DeadlineExceededError(ServeError):
    """A request's deadline expired before it could execute."""

    retryable = True


class CircuitOpenError(ServeError):
    """The circuit breaker for this prepared solver is open (failing fast).

    ``retry_after_s`` hints how long until the breaker admits a
    half-open probe.
    """

    retryable = True

    def __init__(self, message: str, *, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ShardFailedError(ServeError):
    """A shard worker crashed while this request was queued or executing."""

    retryable = True


class ServiceClosedError(ServeError):
    """The service has shut down and no longer accepts requests."""


class QuotaExceededError(OverloadedError):
    """A tenant's token-bucket quota is exhausted (retry after the hint)."""


class UnknownDigestError(ServeError):
    """A digest-only network request named a matrix the server has not seen.

    Retryable by re-submitting **with the matrix payload attached** —
    the network client does this transparently. A server worker restart
    empties its matrix table, so digest-only traffic can hit this at any
    time; it is a cache-coherency signal, not a failure of the request.
    """

    retryable = True


class WireProtocolError(ServeError):
    """A network frame violated the ``repro.serve.net`` wire protocol."""


class CampaignError(ReproError):
    """A campaign spec, artifact store, or runner invariant was violated."""


def _wire_codes() -> dict[str, type]:
    """Class-name → class table of every :class:`ReproError` subclass.

    Computed on demand (not at import) so late-defined subclasses —
    including ones defined outside this module — decode as themselves
    rather than as :class:`ReproError`.
    """
    codes: dict[str, type] = {"ReproError": ReproError}
    pending = [ReproError]
    while pending:
        for cls in pending.pop().__subclasses__():
            if cls.__name__ not in codes:
                codes[cls.__name__] = cls
                pending.append(cls)
    return codes


def error_to_wire(exc: BaseException) -> dict:
    """Encode an exception as the wire-protocol error payload.

    The payload is plain JSON data: the class name as ``code`` (any
    non-library exception encodes as ``ServeError`` — the wire never
    leaks arbitrary exception types), the message, the ``retryable``
    classification, and the retry-after hint in milliseconds when the
    error carries one (load shedding, quotas, open breakers).
    """
    code = type(exc).__name__ if isinstance(exc, ReproError) else "ServeError"
    retry_after_s = getattr(exc, "retry_after_s", None)
    return {
        "code": code,
        "message": str(exc),
        "retryable": is_retryable(exc),
        "retry_after_ms": None if retry_after_s is None else retry_after_s * 1e3,
    }


def error_from_wire(payload: dict) -> ReproError:
    """Reconstruct the typed exception from a wire error payload.

    An unknown ``code`` decodes as :class:`ServeError` (a newer server
    may grow error classes an older client lacks); the retry-after hint
    survives the round-trip for classes that accept one.
    """
    cls = _wire_codes().get(payload.get("code", ""), ServeError)
    if not isinstance(cls, type) or not issubclass(cls, ReproError):
        cls = ServeError
    message = payload.get("message", "")
    retry_after_ms = payload.get("retry_after_ms")
    try:
        if retry_after_ms is not None:
            return cls(message, retry_after_s=retry_after_ms * 1e-3)
        return cls(message)
    except TypeError:
        # The class takes no retry_after_s keyword (or no plain-message
        # constructor); degrade to the closest constructible form.
        return ServeError(message)


def is_retryable(exc: BaseException) -> bool:
    """Whether re-submitting the request that raised ``exc`` may succeed.

    Covers the library hierarchy via :attr:`ReproError.retryable` plus
    the stdlib faults the campaign runner treats as transient: a
    ``BrokenProcessPool`` / ``BrokenExecutor`` (worker crash — the unit
    itself may be fine) and ``TimeoutError``.
    """
    from concurrent.futures import BrokenExecutor

    if isinstance(exc, ReproError):
        return exc.retryable
    return isinstance(exc, (BrokenExecutor, TimeoutError))
