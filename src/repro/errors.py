"""Exception hierarchy for the BlockAMC reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses mark the subsystem that raised them; each carries a
human-readable message describing which constraint was violated.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, dtype, range, ...)."""


class DeviceError(ReproError):
    """A device model constraint was violated (conductance range, levels)."""


class ProgrammingError(DeviceError):
    """Write-and-verify programming could not reach the target conductance."""


class MappingError(ReproError):
    """A matrix could not be mapped onto a crossbar array."""


class CircuitError(ReproError):
    """The circuit netlist is malformed or cannot be solved."""


class SingularCircuitError(CircuitError):
    """The MNA system is singular (floating node, broken feedback, ...)."""


class ConvergenceError(ReproError):
    """An iterative routine failed to converge within its iteration budget."""


class PartitionError(ReproError):
    """A block partition request is invalid for the given matrix."""


class SolverError(ReproError):
    """A solver could not produce a solution (singular block, saturation)."""


class ScheduleError(ReproError):
    """The macro scheduler was asked to do something the hardware cannot."""


class CostModelError(ReproError):
    """The area/power model received an unknown component or architecture."""


class ServeError(ReproError):
    """The solver service could not accept or execute a request."""


class ServiceOverloadedError(ServeError):
    """A bounded request queue was full under the ``reject`` backpressure policy."""


class ServiceClosedError(ServeError):
    """The service has shut down and no longer accepts requests."""


class CampaignError(ReproError):
    """A campaign spec, artifact store, or runner invariant was violated."""
