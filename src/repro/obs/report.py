"""Reading exported traces back: span trees, summaries, critical paths.

Everything here consumes the JSONL records
:class:`~repro.obs.tracer.Tracer` writes — one file per process under a
trace directory, or a single exported file — and never imports the
serving stack, so ``repro trace`` works on dumps copied off any host.

Robustness: a SIGKILLed process can leave a torn final line in its
``spans-<pid>.jsonl``; :func:`read_spans` skips unparseable lines
instead of failing the whole report. Spans whose parent never finished
(it died with the process) are *promoted to roots*, so a partially
traced request still renders as a tree instead of vanishing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.reporting import format_table

__all__ = [
    "SpanNode",
    "build_trees",
    "critical_path",
    "export_spans",
    "format_summary",
    "read_spans",
    "render_tree",
    "slowest_traces",
    "summarize",
]


def read_spans(path: str | os.PathLike) -> list[dict]:
    """Load span records from a JSONL file or a trace directory.

    A directory reads every ``*.jsonl`` inside (sorted by name, so
    output is deterministic); torn or corrupt lines — the tail a
    SIGKILLed worker left mid-write — are skipped silently.
    """
    path = Path(path)
    files = sorted(path.glob("*.jsonl")) if path.is_dir() else [path]
    records: list[dict] = []
    for file in files:
        try:
            text = file.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "span_id" in record:
                records.append(record)
    records.sort(key=lambda r: (r.get("trace_id") or "", r.get("start_s", 0.0)))
    return records


class SpanNode:
    """One span record plus its resolved children (a tree vertex)."""

    __slots__ = ("record", "children")

    def __init__(self, record: dict):
        self.record = record
        self.children: list[SpanNode] = []

    @property
    def name(self) -> str:
        return self.record.get("name", "?")

    @property
    def trace_id(self):
        return self.record.get("trace_id")

    @property
    def span_id(self):
        return self.record.get("span_id")

    @property
    def start_s(self) -> float:
        return float(self.record.get("start_s", 0.0))

    @property
    def end_s(self) -> float:
        return float(self.record.get("end_s", self.start_s))

    @property
    def duration_s(self) -> float:
        return float(self.record.get("duration_s", 0.0))

    @property
    def status(self) -> str:
        return self.record.get("status", "ok")

    def walk(self):
        """Yield this node and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()


def build_trees(spans: list[dict]) -> list[SpanNode]:
    """Link records into trees; returns roots sorted by start time.

    A span whose ``parent_id`` has no record (the parent never finished
    — e.g. it died with a SIGKILLed worker) becomes a root itself, so
    surviving work is never hidden by a lost ancestor.
    """
    nodes = {r["span_id"]: SpanNode(r) for r in spans}
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.record.get("parent_id"))
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.start_s)
    roots.sort(key=lambda n: n.start_s)
    return roots


def summarize(spans: list[dict]) -> dict[str, dict]:
    """Per-span-name stats: count, errors, total/mean/max duration."""
    stats: dict[str, dict] = {}
    for record in spans:
        entry = stats.setdefault(
            record.get("name", "?"),
            {"count": 0, "errors": 0, "total_s": 0.0, "max_s": 0.0},
        )
        duration = float(record.get("duration_s", 0.0))
        entry["count"] += 1
        entry["total_s"] += duration
        entry["max_s"] = max(entry["max_s"], duration)
        if record.get("status") not in ("ok", "degraded"):
            entry["errors"] += 1
    for entry in stats.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return stats


def format_summary(spans: list[dict], title: str = "trace summary") -> str:
    """ASCII table of :func:`summarize`, slowest mean first."""
    stats = summarize(spans)
    traces = {r.get("trace_id") for r in spans}
    rows = [
        [
            name,
            str(entry["count"]),
            str(entry["errors"]),
            f"{entry['mean_s'] * 1e3:.3f}",
            f"{entry['max_s'] * 1e3:.3f}",
            f"{entry['total_s'] * 1e3:.3f}",
        ]
        for name, entry in sorted(
            stats.items(), key=lambda item: -item[1]["total_s"]
        )
    ]
    return format_table(
        ["span", "count", "errors", "mean ms", "max ms", "total ms"],
        rows,
        title=f"{title} — {len(spans)} spans, {len(traces)} traces",
    )


def slowest_traces(spans: list[dict], limit: int = 5) -> list[SpanNode]:
    """Root spans ordered by duration, longest first."""
    roots = build_trees(spans)
    roots.sort(key=lambda n: -n.duration_s)
    return roots[:limit]


def critical_path(root: SpanNode) -> list[SpanNode]:
    """The chain of spans that determined when ``root`` finished.

    At each level, the child that ended last dominates the finish time;
    following it to a leaf yields the path optimization should attack.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: child.end_s)
        path.append(node)
    return path


def render_tree(root: SpanNode, *, mark_critical: bool = True) -> str:
    """Indented one-span-per-line rendering of a trace tree."""
    critical = set()
    if mark_critical:
        critical = {id(node) for node in critical_path(root)}
    origin = root.start_s
    lines: list[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        attrs = node.record.get("attributes") or {}
        badges = []
        if node.status != "ok":
            badges.append(f"[{node.status}]")
        if id(node) in critical and mark_critical:
            badges.append("*")
        detail = " ".join(
            f"{key}={attrs[key]}"
            for key in ("size", "batch", "solver", "digest", "analog_time_s")
            if key in attrs
        )
        error = node.record.get("error")
        lines.append(
            "  " * depth
            + f"{node.name}  {node.duration_s * 1e3:.3f} ms"
            + f"  (+{(node.start_s - origin) * 1e3:.3f} ms)"
            + (f"  {' '.join(badges)}" if badges else "")
            + (f"  {detail}" if detail else "")
            + (f"  !{error}" if error else "")
        )
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    short = (root.trace_id or "?")[:16]
    header = f"trace {short}  ({root.duration_s * 1e3:.3f} ms, * = critical path)"
    return "\n".join([header] + lines)


def export_spans(src: str | os.PathLike, out: str | os.PathLike) -> int:
    """Merge a trace directory (or file) into one sorted JSONL file.

    Returns the number of spans written. Sorting is by
    ``(trace_id, start_s)``, so one request's spans are contiguous in
    the merged dump regardless of which process wrote them.
    """
    records = read_spans(src)
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return len(records)
