"""The tracer core: monotonic-clock spans, ring buffer, JSONL export.

A :class:`Span` is one timed operation — ``trace_id`` groups the spans
of one request's journey, ``parent_id`` links a span to the span that
caused it, and ``attributes`` carry small JSON-serializable facts
(digest, batch size, ``analog_time_s``). A :class:`Tracer` hands out
spans and collects the finished records into a lock-protected in-memory
ring buffer; when configured with a ``trace_dir`` it also appends every
finished span to ``spans-<pid>.jsonl`` (one flushed line per span, so a
SIGKILLed worker loses only its *unfinished* spans — everything that
completed is already on disk).

Zero-perturbation contract
--------------------------

Tracing must never change solve results:

- span ids come from :func:`os.urandom`, never from a NumPy generator,
  so no RNG stream the solvers consume is ever advanced;
- when disabled (the default), the module-level singleton is a
  :class:`_DisabledTracer` whose ``start_span`` returns the shared
  no-op span — hot paths pay one attribute lookup (``tracer.enabled``)
  and nothing else;
- spans only *observe*: no code path branches on whether tracing is on
  (``tests/test_obs.py`` asserts solves are bit-identical traced vs.
  untraced, against the same golden records the kernel-equivalence
  suite uses).

Cross-process stitching
-----------------------

``Span.context()`` is a small dict (``trace_id`` + ``span_id``) that
travels in the wire-protocol header and in worker-queue envelopes;
``start_span(trace=ctx)`` on the far side parents a new span under it.
Timestamps are ``time.perf_counter()`` (CLOCK_MONOTONIC on Linux —
comparable across processes on one host), plus one wall-clock stamp per
span for human-readable correlation.

Worker processes call :func:`configure` themselves (a fresh tracer with
its own lock and its own ``spans-<pid>.jsonl``); forked children that
merely inherit an enabled tracer get a fresh output file automatically
— the writer reopens whenever ``os.getpid()`` changes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "DISABLED_TRACER",
    "NOOP_SPAN",
    "Span",
    "TRACE_ENV",
    "Tracer",
    "active",
    "configure",
    "configure_from_env",
    "disable",
    "record_span",
    "start_span",
]

#: Environment variable naming the trace directory; exporting it enables
#: tracing in campaign workers (mirrors ``REPRO_CHAOS``).
TRACE_ENV = "REPRO_TRACE_DIR"

#: Default ring-buffer capacity (finished spans retained in memory).
DEFAULT_CAPACITY = 8192


def _new_id(nbytes: int) -> str:
    # os.urandom, deliberately: ids must never touch a NumPy RNG stream
    # the solvers might consume (the zero-perturbation contract).
    return os.urandom(nbytes).hex()


def _json_safe(value):
    """Best-effort JSON coercion for attribute values (never raises)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    try:  # numpy scalars and anything else float-like
        return float(value)
    except (TypeError, ValueError):
        return str(value)


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    enabled = False
    trace_id = None
    span_id = None
    parent_id = None

    def set(self, **attributes) -> "_NoopSpan":
        return self

    def context(self) -> None:
        return None

    def end(self, **kwargs) -> None:
        pass

    def fail(self, error) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed operation; finish with :meth:`end`/:meth:`fail` or ``with``.

    Used as a context manager the span becomes the tracer's *current*
    span for the calling thread (new spans started without an explicit
    parent nest under it) and ends on exit — ``status="error"`` with the
    exception recorded if the block raised.
    """

    __slots__ = (
        "_tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "wall_time_s",
        "attributes",
        "status",
        "error",
        "end_s",
        "_finished",
    )

    enabled = True

    def __init__(self, tracer, name, trace_id, span_id, parent_id, start_s, attributes):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.wall_time_s = time.time()
        self.attributes = attributes
        self.status = "ok"
        self.error = None
        self.end_s = None
        self._finished = False

    def set(self, **attributes) -> "Span":
        """Attach attributes (JSON-coerced at export time); returns self."""
        self.attributes.update(attributes)
        return self

    def context(self) -> dict:
        """The propagation context: put this in a wire header or envelope."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def end(self, *, status: str = "ok", error=None, end_s: float | None = None) -> None:
        """Finish the span (idempotent); the record enters the ring/file."""
        if self._finished:
            return
        self._finished = True
        self.end_s = end_s if end_s is not None else time.perf_counter()
        self.status = status
        if error is not None:
            self.error = (
                f"{type(error).__name__}: {error}"
                if isinstance(error, BaseException)
                else str(error)
            )
        self._tracer._finish(self)

    def fail(self, error) -> None:
        """Finish with ``status="error"`` and the error recorded."""
        self.end(status="error", error=error)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop(self)
        if exc is not None:
            self.fail(exc)
        else:
            self.end()
        return False


class Tracer:
    """Collects finished spans into a ring buffer and optional JSONL files.

    Thread-safe. ``trace_dir`` (optional) receives one append-only
    ``spans-<pid>.jsonl`` per writing process; each finished span is one
    flushed line, so crashed processes lose only unfinished spans.
    Finish hooks (see :meth:`add_finish_hook`) observe every finished
    record — the service uses one to feed per-stage latency metrics.
    """

    enabled = True

    def __init__(
        self,
        trace_dir: str | os.PathLike | None = None,
        capacity: int = DEFAULT_CAPACITY,
        service: str = "repro",
    ):
        self.trace_dir = None if trace_dir is None else Path(trace_dir)
        self.service = service
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=max(1, capacity))
        self._hooks: list = []
        self._local = threading.local()
        self._file = None
        self._file_pid = None
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # span creation
    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        *,
        parent=None,
        trace: dict | None = None,
        attributes: dict | None = None,
        start_s: float | None = None,
    ) -> Span:
        """Open a span.

        ``parent`` (a live :class:`Span`) or ``trace`` (a propagated
        :meth:`Span.context` dict) set the lineage; with neither, the
        calling thread's current span (innermost ``with`` block) is the
        implicit parent, and a new trace starts when there is none.
        ``start_s`` backdates the span (retroactive stages measured
        after the fact).
        """
        if parent is not None and not getattr(parent, "enabled", False):
            parent = None
        if parent is None and trace is None:
            parent = self._current()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif trace is not None and trace.get("trace_id"):
            trace_id, parent_id = trace["trace_id"], trace.get("span_id")
        else:
            trace_id, parent_id = _new_id(16), None
        return Span(
            self,
            name,
            trace_id,
            _new_id(8),
            parent_id,
            start_s if start_s is not None else time.perf_counter(),
            dict(attributes) if attributes else {},
        )

    def record_span(
        self,
        name: str,
        *,
        start_s: float,
        end_s: float | None = None,
        parent=None,
        trace: dict | None = None,
        attributes: dict | None = None,
        status: str = "ok",
        error=None,
    ) -> Span:
        """Open and immediately finish a retroactive span (measured stage)."""
        span = self.start_span(
            name, parent=parent, trace=trace, attributes=attributes, start_s=start_s
        )
        span.end(status=status, error=error, end_s=end_s)
        return span

    # ------------------------------------------------------------------
    # implicit (thread-local) span context
    # ------------------------------------------------------------------
    def _current(self):
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    @contextmanager
    def use_span(self, span: Span):
        """Make ``span`` the current span for the block without ending it."""
        self._push(span)
        try:
            yield span
        finally:
            self._pop(span)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def _finish(self, span: Span) -> None:
        record = {
            "name": span.name,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "service": self.service,
            "pid": os.getpid(),
            "start_s": span.start_s,
            "end_s": span.end_s,
            "duration_s": span.end_s - span.start_s,
            "wall_time_s": span.wall_time_s,
            "status": span.status,
            "error": span.error,
            "attributes": _json_safe(span.attributes),
        }
        with self._lock:
            self._ring.append(record)
            self._write(record)
        for hook in self._hooks:
            hook(record)

    def _write(self, record: dict) -> None:
        if self.trace_dir is None:
            return
        pid = os.getpid()
        if self._file is None or self._file_pid != pid:
            # Reopen after a fork: the child appends to its own file, so
            # two processes never interleave lines in one JSONL.
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:  # pragma: no cover - inherited handle
                    pass
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            self._file = open(
                self.trace_dir / f"spans-{pid}.jsonl", "a", encoding="utf-8"
            )
            self._file_pid = pid
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    def spans(self) -> list[dict]:
        """Snapshot of the ring buffer (oldest first)."""
        with self._lock:
            return list(self._ring)

    def export(self, path: str | os.PathLike) -> int:
        """Dump the ring buffer as JSONL; returns the span count."""
        records = self.spans()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return len(records)

    def reset(self) -> None:
        """Drop the ring buffer (files on disk are untouched)."""
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        """Close the output file handle (the tracer stays usable)."""
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:  # pragma: no cover - already gone
                    pass
                self._file = None
                self._file_pid = None

    # ------------------------------------------------------------------
    # finish hooks
    # ------------------------------------------------------------------
    def add_finish_hook(self, hook) -> None:
        """Call ``hook(record)`` for every finished span (must not raise)."""
        self._hooks.append(hook)

    def remove_finish_hook(self, hook) -> None:
        """Detach a finish hook (no-op when absent)."""
        try:
            self._hooks.remove(hook)
        except ValueError:
            pass


class _DisabledTracer:
    """The no-op singleton active by default; every method costs nothing."""

    enabled = False
    trace_dir = None

    def start_span(self, name, **kwargs):
        return NOOP_SPAN

    def record_span(self, name, **kwargs):
        return NOOP_SPAN

    @contextmanager
    def use_span(self, span):
        yield span

    def spans(self):
        return []

    def export(self, path):
        return 0

    def reset(self):
        pass

    def close(self):
        pass

    def add_finish_hook(self, hook):
        pass

    def remove_finish_hook(self, hook):
        pass


DISABLED_TRACER = _DisabledTracer()

#: The process-wide active tracer (the disabled singleton by default).
_ACTIVE = DISABLED_TRACER

#: Pid that configured the active tracer (fork detection for workers).
_ACTIVE_PID: int | None = None


def active():
    """The process-wide tracer; check ``.enabled`` before building spans."""
    return _ACTIVE


def configure(
    *,
    trace_dir: str | os.PathLike | None = None,
    capacity: int = DEFAULT_CAPACITY,
    service: str = "repro",
) -> Tracer:
    """Enable tracing process-wide; returns the fresh :class:`Tracer`.

    ``trace_dir=None`` collects into the ring buffer only (export with
    :meth:`Tracer.export`); with a directory every finished span is also
    appended to ``spans-<pid>.jsonl`` there.
    """
    global _ACTIVE, _ACTIVE_PID
    if _ACTIVE.enabled:
        _ACTIVE.close()
    _ACTIVE = Tracer(trace_dir=trace_dir, capacity=capacity, service=service)
    _ACTIVE_PID = os.getpid()
    return _ACTIVE


def disable() -> None:
    """Return to the no-op singleton (in-memory spans are dropped)."""
    global _ACTIVE, _ACTIVE_PID
    if _ACTIVE.enabled:
        _ACTIVE.close()
    _ACTIVE = DISABLED_TRACER
    _ACTIVE_PID = None


def configure_from_env(environ=None):
    """Enable tracing when ``REPRO_TRACE_DIR`` is exported; returns the tracer.

    Idempotent for an already-enabled tracer in the same process; a
    forked worker that inherited the parent's tracer reconfigures so it
    owns a fresh lock and its own output file. This is the campaign
    workers' enablement path (mirrors how ``REPRO_CHAOS`` travels).
    """
    env = environ if environ is not None else os.environ
    path = env.get(TRACE_ENV)
    if not path:
        return _ACTIVE
    if _ACTIVE.enabled and _ACTIVE_PID == os.getpid():
        return _ACTIVE
    return configure(trace_dir=path, service="repro")


def start_span(name: str, **kwargs):
    """Module-level convenience for :meth:`Tracer.start_span`."""
    return _ACTIVE.start_span(name, **kwargs)


def record_span(name: str, **kwargs):
    """Module-level convenience for :meth:`Tracer.record_span`."""
    return _ACTIVE.record_span(name, **kwargs)
