"""``repro.obs``: zero-perturbation tracing and telemetry.

End-to-end request tracing for the serving stack — client → TCP
front-end → shard worker → batch → kernel — plus per-unit spans in
campaigns, with one hard guarantee: **tracing never changes solve
results**. Span ids come from ``os.urandom`` (no NumPy RNG stream is
touched), no solver code path branches on whether tracing is enabled,
and when disabled every hot path pays exactly one attribute lookup
against a no-op singleton. ``tests/test_obs.py`` asserts bit-identity
traced vs. untraced against the repo's golden records.

Quickstart::

    from repro.obs import tracer as obs

    obs.configure(trace_dir="trace_out")
    with obs.start_span("my.operation", attributes={"size": 64}):
        ...
    # spans land in trace_out/spans-<pid>.jsonl as they finish

    from repro.obs import report
    roots = report.build_trees(report.read_spans("trace_out"))
    print(report.render_tree(roots[0]))

Serving integration: ``ServiceConfig(trace_dir=...)`` (or ``repro serve
--trace-dir``) enables capture in the thread tier and in every network
worker process; ``REPRO_TRACE_DIR`` enables it in campaign workers.
``repro trace summary|slowest|export`` renders the dumps.
"""

from repro.obs.report import (
    SpanNode,
    build_trees,
    critical_path,
    export_spans,
    format_summary,
    read_spans,
    render_tree,
    slowest_traces,
    summarize,
)
from repro.obs.tracer import (
    DISABLED_TRACER,
    NOOP_SPAN,
    TRACE_ENV,
    Span,
    Tracer,
    active,
    configure,
    configure_from_env,
    disable,
    record_span,
    start_span,
)

__all__ = [
    "DISABLED_TRACER",
    "NOOP_SPAN",
    "Span",
    "SpanNode",
    "TRACE_ENV",
    "Tracer",
    "active",
    "build_trees",
    "configure",
    "configure_from_env",
    "critical_path",
    "disable",
    "export_spans",
    "format_summary",
    "read_spans",
    "record_span",
    "render_tree",
    "slowest_traces",
    "start_span",
    "summarize",
]
