"""Setup shim.

Kept alongside pyproject.toml so editable installs work in offline
environments whose pip cannot build PEP 660 wheels (no `wheel` package).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
