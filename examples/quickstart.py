"""Quickstart: solve a linear system on simulated BlockAMC hardware.

Runs the same 5-step analog schedule the paper's macro executes
(Fig. 2-4) on a Wishart system, under three hardware assumptions, and
prints the per-step telemetry of Fig. 6(a).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BlockAMCSolver,
    HardwareConfig,
    OriginalAMCSolver,
    format_table,
    random_vector,
    wishart_matrix,
)


def main():
    n = 64
    matrix = wishart_matrix(n, rng=0)
    b = random_vector(n, rng=1)

    print(f"Solving a {n}x{n} Wishart system A x = b on simulated AMC hardware\n")

    rows = []
    for label, config in [
        ("ideal hardware", HardwareConfig.ideal()),
        ("ideal mapping (Fig. 6)", HardwareConfig.paper_ideal_mapping()),
        ("5% variation (Fig. 7)", HardwareConfig.paper_variation()),
        ("+1 ohm wires (Fig. 9)", HardwareConfig.paper_interconnect()),
    ]:
        block = BlockAMCSolver(config).solve(matrix, b, rng=2)
        original = OriginalAMCSolver(config).solve(matrix, b, rng=2)
        rows.append([label, original.relative_error, block.relative_error])
    print(format_table(["hardware", "original AMC", "BlockAMC"], rows,
                       title="Relative error (paper Eq. 6) vs digital solve"))

    # Per-step telemetry: the scatter data of Fig. 6(a).
    result = BlockAMCSolver(HardwareConfig.paper_ideal_mapping()).solve(matrix, b, rng=3)
    print("\nPer-step outputs (BlockAMC vs exact arithmetic):")
    refs = result.metadata["reference_steps"]
    for op in result.operations:
        step = op.label.split(":")[0]
        deviation = float(np.max(np.abs(op.output - refs[step])))
        print(
            f"  {op.label:16s} size={op.rows:3d}  "
            f"settling={op.settling_time_s*1e9:7.1f} ns  "
            f"max dev from numerical={deviation:.2e} V"
        )

    print(f"\nTotal analog compute time: {result.analog_time_s*1e6:.2f} us")
    print(f"Final relative error:      {result.relative_error:.2e}")


if __name__ == "__main__":
    main()
