"""Reliability toolkit: feasibility, faults, remapping, calibration.

Deployment-side extensions around the paper's core algorithm: check a
workload *before* committing hardware, survive stuck cells by remapping,
and null op-amp offsets with auto-zero calibration.

Run:  python examples/reliability_toolkit.py
"""

import math

import numpy as np

from repro import CrossbarArray, HardwareConfig, format_table, random_vector
from repro.amc.calibration import CalibratedOperations
from repro.amc.config import OpAmpConfig
from repro.amc.ops import AMCOperations
from repro.core.feasibility import assess_feasibility
from repro.crossbar.mapping import normalize_matrix
from repro.crossbar.remapping import (
    fault_aware_permutation,
    fault_overlap,
)
from repro.workloads.matrices import diagonally_dominant_matrix, wishart_matrix
from repro.workloads.pde import poisson_1d


def main():
    # ------------------------------------------------------------------
    # 1. Feasibility: which of these workloads belongs on AMC?
    # ------------------------------------------------------------------
    candidates = {
        "Wishart 64 (SPD, benign)": wishart_matrix(64, rng=0),
        "Poisson-1D 64 (cond ~1700)": poisson_1d(64),
        "negated system (unstable)": -wishart_matrix(16, rng=1),
    }
    rows = []
    for label, matrix in candidates.items():
        report = assess_feasibility(matrix)
        rows.append(
            [
                label,
                "OK" if report.feasible else "BLOCKED",
                report.stability_margin,
                report.predicted_error if report.predicted_error is not None else float("nan"),
                report.recommended_stages,
            ]
        )
    print(
        format_table(
            ["workload", "verdict", "stability", "predicted err", "stages"],
            rows,
            title="Pre-flight feasibility (repro.core.feasibility)",
        )
    )

    # ------------------------------------------------------------------
    # 2. Fault-aware remapping: live with stuck cells
    # ------------------------------------------------------------------
    rng = np.random.default_rng(2)
    matrix, _ = normalize_matrix(diagonally_dominant_matrix(24, rng))
    mask = np.zeros((24, 24), dtype=bool)
    mask[np.arange(0, 24, 4), np.arange(0, 24, 4)] = True  # diagonal faults
    before = fault_overlap(matrix, mask)
    row_perm, col_perm = fault_aware_permutation(matrix, mask)
    after = fault_overlap(matrix[row_perm][:, col_perm], mask)
    print(
        f"\nFault-aware remapping: |entry| mass on {int(mask.sum())} stuck cells "
        f"reduced {before:.3f} -> {after:.3f} "
        f"({1.0 - after / before:.0%} less exposure)\n"
    )

    # ------------------------------------------------------------------
    # 3. Auto-zero calibration: null the op-amp offsets
    # ------------------------------------------------------------------
    array = CrossbarArray.program(matrix, rng=3, pre_normalized=True)
    config = HardwareConfig(
        opamp=OpAmpConfig(open_loop_gain=math.inf, input_offset_sigma_v=2e-3)
    )
    ops = AMCOperations(config)
    calibrated = CalibratedOperations(ops)
    v = random_vector(24, rng=4) * 0.2
    raw = ops.inv(array, v, rng=5)
    cal = calibrated.inv(array, v, rng=5)
    raw_err = float(np.max(np.abs(raw.error_vector)))
    cal_err = float(np.max(np.abs(cal.output - cal.ideal_output)))
    print(
        format_table(
            ["mode", "max INV error (V)"],
            [["raw (2 mV offsets)", raw_err], ["auto-zero calibrated", cal_err]],
            title="Offset calibration (repro.amc.calibration)",
        )
    )
    print(
        "\nThe zero-input response captures the entire systematic offset "
        "error of the linear circuit; one measurement per array removes it."
    )


if __name__ == "__main__":
    main()
