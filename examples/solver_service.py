"""Solver service demo: mixed traffic through ``repro.serve``.

Drives a stream of mixed Wishart / Toeplitz / Poisson solve requests —
a few hot matrices, fresh right-hand sides — through the concurrent
:class:`~repro.serve.SolverService` and through the sequential
reference executor, then shows:

- that the service's answers are **bit-identical** to the sequential
  reference (scheduling, batching, and thread count never change a
  result);
- the service metrics: throughput, latency quantiles, batch-size
  histogram, and prepared-solver cache hit rate.

Run:  python examples/solver_service.py
"""

import numpy as np

from repro import ServiceConfig, SolverService, mixed_traffic, run_sequential
from repro.analysis.reporting import format_table


def main():
    requests = mixed_traffic(48, unique_matrices=6, sizes=(16, 24, 32), seed=7)
    sizes = sorted({r.size for r in requests})
    print(
        f"Submitting {len(requests)} solve requests "
        f"({len({r.digest for r in requests})} distinct matrices, sizes {sizes})\n"
    )

    config = ServiceConfig(workers=2, max_batch_size=16, max_linger_s=0.005)

    reference, reference_metrics = run_sequential(requests, config)

    with SolverService(config) as service:
        tickets = [service.submit_request(request) for request in requests]
        results = [ticket.result() for ticket in tickets]
        metrics = service.metrics()

    identical = all(
        np.array_equal(a.x, b.x) and a.relative_error == b.relative_error
        for a, b in zip(reference, results)
    )
    print(f"service vs sequential reference: bit-identical = {identical}\n")

    print(metrics.table(title="concurrent service (2 workers, micro-batching)"))
    print()
    print(reference_metrics.table(title="sequential reference (same cache, no batching)"))
    print()

    errors = [result.relative_error for result in results]
    rows = [
        ["requests", len(results)],
        ["mean relative error", float(np.mean(errors))],
        ["p95 relative error", float(np.quantile(errors, 0.95))],
        ["speedup vs sequential reference",
         f"{metrics.throughput_rps / max(reference_metrics.throughput_rps, 1e-12):.2f}x"],
    ]
    print(format_table(["quantity", "value"], rows, title="workload summary"))


if __name__ == "__main__":
    main()
