"""Massive-MIMO zero-forcing precoding on BlockAMC.

The paper's introduction motivates AMC with data-intensive workloads;
the authors' companion work (ref. [9]) applies AMC to massive-MIMO
precoding. Zero-forcing precoding solves ``(H H^H) u = s`` per symbol —
a complex Hermitian positive-definite system, which maps onto real AMC
hardware through the standard real embedding (doubling the size, which
is exactly where BlockAMC's partitioning pays off).

Run:  python examples/mimo_precoding.py
"""

import numpy as np

from repro import BlockAMCSolver, HardwareConfig, format_table
from repro.utils.linalg import embed_complex_system, extract_complex_solution


def main():
    rng = np.random.default_rng(0)
    n_users = 16
    n_antennas = 64

    # Rayleigh channel: users x antennas.
    h = (
        rng.normal(size=(n_users, n_antennas))
        + 1j * rng.normal(size=(n_users, n_antennas))
    ) / np.sqrt(2.0)
    gram = h @ h.conj().T  # users x users, Hermitian positive definite

    # QPSK symbols for the users.
    symbols = (rng.choice([-1.0, 1.0], n_users) + 1j * rng.choice([-1.0, 1.0], n_users)) / np.sqrt(2)

    # Zero-forcing: solve (H H^H) u = s, then precode x = H^H u.
    embedded, stacked = embed_complex_system(gram, symbols)
    print(
        f"Channel: {n_users} users x {n_antennas} antennas -> real system "
        f"of size {embedded.shape[0]} (complex {n_users} doubled by embedding)\n"
    )

    rows = []
    for label, config in [
        ("ideal", HardwareConfig.ideal()),
        ("5% variation", HardwareConfig.paper_variation()),
        ("variation + wires", HardwareConfig.paper_interconnect()),
    ]:
        result = BlockAMCSolver(config).solve(embedded, stacked, rng=1)
        u = extract_complex_solution(result.x)
        x_precoded = h.conj().T @ u
        received = h @ x_precoded
        evm = float(np.linalg.norm(received - symbols) / np.linalg.norm(symbols))
        rows.append([label, result.relative_error, evm])

    print(
        format_table(
            ["hardware", "solver rel error", "received EVM"],
            rows,
            title="Zero-forcing precoding via BlockAMC",
        )
    )
    print(
        "\nEVM (error vector magnitude) is what the link actually sees; a "
        "few percent is well inside QPSK decision margins, matching the "
        "paper's argument that AMC precision suffices as a fast seed."
    )


if __name__ == "__main__":
    main()
