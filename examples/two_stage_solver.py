"""Two-stage BlockAMC: solving a system none of the arrays could hold.

Reproduces the paper's Fig. 5/8 scenario: the matrix is partitioned
twice so each RRAM array holds only a quarter-size block (a 256x256
paper system becomes 16 arrays of 64x64). Intermediates between the
four one-stage macros round-trip through ADC -> memory -> DAC.

Run:  python examples/two_stage_solver.py
"""

from repro import HardwareConfig, MultiStageSolver, format_table, random_vector, wishart_matrix
from repro.core.original import OriginalAMCSolver


def main():
    n = 64
    matrix = wishart_matrix(n, rng=0)
    b = random_vector(n, rng=1)
    config = HardwareConfig.paper_variation()

    print(f"System: {n}x{n} Wishart, 5% programming variation\n")

    rows = []
    results = {}
    for stages in (1, 2, 3):
        solver = MultiStageSolver(config, stages=stages)
        result = solver.solve(matrix, b, rng=2)
        results[stages] = result
        md = result.metadata
        largest_array = max(op.rows for op in result.operations)
        rows.append(
            [
                solver.name,
                md["array_count"],
                largest_array,
                md["macro_count"],
                md["adc_conversions"],
                result.relative_error,
            ]
        )
    original = OriginalAMCSolver(config).solve(matrix, b, rng=2)
    rows.append(["original-amc", 1, n, 0, 1, original.relative_error])

    print(
        format_table(
            ["solver", "arrays", "largest array", "macros", "ADC conversions", "rel error"],
            rows,
            title="Partition depth vs hardware inventory and accuracy",
        )
    )

    two = results[2]
    print(
        f"\nTwo-stage solve used {len(two.operations)} analog operations "
        f"({two.operation_counts}) totalling {two.analog_time_s*1e6:.2f} us of settling."
    )
    print(
        "Note how deeper partitioning keeps every array at a "
        "manufacturable size while accuracy stays comparable — the "
        "scalability argument of the paper's Sec. III-C."
    )


if __name__ == "__main__":
    main()
