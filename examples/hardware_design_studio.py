"""Hardware design studio: bandwidth, dynamics, and precision knobs.

A tour of the circuit-level tooling beyond the paper's DC accuracy
study: the INV circuit's frequency response and compute bandwidth, its
settling trajectory, and the compensated-slicing technique that buys
back precision from 5% devices.

Run:  python examples/hardware_design_studio.py
"""

import numpy as np

from repro import CrossbarArray, HardwareConfig, format_table, random_vector, wishart_matrix
from repro.amc.config import ConverterConfig, OpAmpConfig
from repro.circuits import (
    amc_frequency_response,
    minus_3db_frequency,
    simulate_inv_transient,
)
from repro.core.precision import CompensatedMVM
from repro.crossbar.mapping import normalize_matrix


def main():
    n = 8
    matrix_raw = wishart_matrix(n, rng=0)
    matrix, _ = normalize_matrix(matrix_raw)
    array = CrossbarArray.program(matrix, rng=1, pre_normalized=True)
    v = random_vector(n, rng=2) * 0.3

    # ------------------------------------------------------------------
    # Frequency domain: how fast can this solver circuit compute?
    # ------------------------------------------------------------------
    freqs = np.logspace(4, 9, 100)
    rows = []
    for gbwp in (10e6, 100e6, 1e9):
        response = amc_frequency_response(
            array, v, freqs, topology="inv", a0=1e4, gbwp_hz=gbwp
        )
        f3db = minus_3db_frequency(
            response["freqs_hz"], response["magnitude"], response["dc"]
        )
        transient = simulate_inv_transient(array, v, open_loop_gain=1e4, gbwp_hz=gbwp)
        rows.append(
            [
                gbwp / 1e6,
                f3db / 1e6,
                transient.slowest_pole_hz / 1e6,
                transient.settling_time_s * 1e9,
            ]
        )
    print(
        format_table(
            ["GBWP (MHz)", "-3dB BW (MHz)", "slowest pole (MHz)", "settling (ns)"],
            rows,
            title=f"INV circuit compute bandwidth, {n}x{n} Wishart",
        )
    )
    print(
        "\nThe AC sweep and the transient simulation agree on the circuit's "
        "dominant pole — two independent views of the paper's settling model.\n"
    )

    # ------------------------------------------------------------------
    # Precision: compensated slicing of a 5% array
    # ------------------------------------------------------------------
    config = HardwareConfig.paper_variation().with_(
        opamp=OpAmpConfig(input_offset_sigma_v=0.0),
        converters=ConverterConfig(dac_bits=16, adc_bits=16),
    )
    x = np.linalg.solve(matrix_raw, random_vector(n, rng=3))
    rows = []
    for slices in (1, 2, 3):
        mvm = CompensatedMVM(matrix_raw, config, rng=4, slices=slices)
        product, _ = mvm.apply(x, rng=5)
        error = float(np.linalg.norm(product - matrix_raw @ x) / np.linalg.norm(matrix_raw @ x))
        rows.append([slices, mvm.residual_norm, error])
    print(
        format_table(
            ["slices", "matrix residual", "MVM relative error"],
            rows,
            title="Compensated slicing: precision vs array count (5% devices)",
        )
    )
    print(
        "\nEach extra array stores the read-verified residual of the ones "
        "before it, cutting the effective matrix error geometrically."
    )


if __name__ == "__main__":
    main()
