"""Scaling study: reproduce the shape of Figs. 6(c), 7, and 8(d).

Sweeps matrix size for both workload families and all three solvers
(original AMC, one-stage and two-stage BlockAMC) under the paper's
variation model, and prints the error-vs-size series each figure plots.

Run:  python examples/scaling_study.py [--paper-scale]
"""

import sys

from repro import HardwareConfig, format_table, toeplitz_matrix, wishart_matrix
from repro.analysis.accuracy import accuracy_sweep, run_trials
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver


def main(paper_scale: bool = False):
    sizes = (8, 16, 32, 64, 128, 256, 512) if paper_scale else (8, 16, 32)
    trials = 40 if paper_scale else 3

    factories = {
        "original": lambda: OriginalAMCSolver(HardwareConfig.paper_variation()),
        "1-stage": lambda: BlockAMCSolver(HardwareConfig.paper_variation()),
        "2-stage": lambda: MultiStageSolver(HardwareConfig.paper_variation(), stages=2),
    }

    for family, factory in [
        ("Wishart (Figs. 7a, 8d)", lambda n, rng: wishart_matrix(n, rng)),
        ("Toeplitz (Fig. 7b)", lambda n, rng: toeplitz_matrix(n, rng)),
    ]:
        records = run_trials(factories, factory, sizes, trials, seed=0)
        table = accuracy_sweep(records)
        rows = [
            [size] + [table[name][size][0] for name in factories]
            for size in sizes
        ]
        print(
            format_table(
                ["size"] + list(factories),
                rows,
                title=f"{family} — mean relative error, sigma = 5%, {trials} trials",
            )
        )
        print()


if __name__ == "__main__":
    main(paper_scale="--paper-scale" in sys.argv)
