"""Non-ideality analysis: what actually limits AMC accuracy?

Walks the full device/circuit non-ideality stack the library models —
programming variation, stuck cells, finite conductance levels, wire
resistance, op-amp gain and offset — one at a time, on the same system,
so their individual contributions are visible. This is the engineering
view behind the paper's Figs. 6/7/9.

Run:  python examples/nonideality_analysis.py
"""

import math

from repro import (
    BlockAMCSolver,
    ConverterConfig,
    GaussianVariation,
    HardwareConfig,
    OpAmpConfig,
    ParasiticConfig,
    ProgrammingConfig,
    StuckFaultModel,
    format_table,
    random_vector,
    wishart_matrix,
)
from repro.devices import DeviceSpec, RelativeGaussianVariation


def main():
    n = 32
    matrix = wishart_matrix(n, rng=0)
    b = random_vector(n, rng=1)

    perfect_opamp = OpAmpConfig(open_loop_gain=math.inf, input_offset_sigma_v=0.0)
    cases = {
        "everything ideal": HardwareConfig.ideal(),
        "8-bit converters only": HardwareConfig.ideal().with_(
            converters=ConverterConfig(dac_bits=8, adc_bits=8)
        ),
        "finite gain 80 dB only": HardwareConfig.ideal().with_(
            opamp=OpAmpConfig(open_loop_gain=1e4, input_offset_sigma_v=0.0)
        ),
        "0.25 mV offsets only": HardwareConfig.ideal().with_(
            opamp=OpAmpConfig(open_loop_gain=math.inf, input_offset_sigma_v=0.25e-3)
        ),
        "5% variation only": HardwareConfig.ideal().with_(
            opamp=perfect_opamp,
            programming=ProgrammingConfig(variation=RelativeGaussianVariation(0.05)),
        ),
        "0.1% stuck cells only": HardwareConfig.ideal().with_(
            opamp=perfect_opamp,
            programming=ProgrammingConfig(
                faults=StuckFaultModel(p_stuck_on=0.0005, p_stuck_off=0.0005)
            ),
        ),
        "64 conductance levels only": HardwareConfig.ideal().with_(
            opamp=perfect_opamp,
            programming=ProgrammingConfig(
                device=DeviceSpec.finite_window(levels=64), quantize=True
            ),
        ),
        "1 ohm wires only": HardwareConfig.ideal().with_(
            opamp=perfect_opamp,
            parasitics=ParasiticConfig(r_wire=1.0, fidelity="first_order"),
        ),
        "paper stack (Fig. 9)": HardwareConfig.paper_interconnect(),
    }

    rows = []
    for label, config in cases.items():
        result = BlockAMCSolver(config).solve(matrix, b, rng=2)
        rows.append([label, result.relative_error, result.saturated])
    print(
        format_table(
            ["non-ideality", "relative error", "saturated"],
            rows,
            title=f"BlockAMC error budget, {n}x{n} Wishart",
        )
    )

    # A second view: the absolute-sigma variation model the paper's text
    # literally describes, for comparison (see DESIGN.md).
    literal = HardwareConfig.ideal().with_(
        opamp=perfect_opamp,
        programming=ProgrammingConfig(variation=GaussianVariation(0.05 * 100e-6)),
    )
    result = BlockAMCSolver(literal).solve(matrix, b, rng=3)
    print(
        "\nliteral 'sigma = 0.05*G0' (absolute) variation model: "
        f"relative error = {result.relative_error:.3f} "
        "(cf. DESIGN.md on why the relative reading is used)"
    )


if __name__ == "__main__":
    main()
