"""Scientific computing on BlockAMC: a Poisson boundary-value problem.

The paper opens with scientific computing as the motivating workload.
This example discretizes -u'' = f (and a small 2-D Poisson problem)
with finite differences — systems whose conditioning grows as O(n^2) —
and solves them three ways: digitally, directly on BlockAMC, and with
BlockAMC inside flexible GMRES (the preconditioner deployment).

Run:  python examples/poisson_solver.py
"""

import numpy as np

from repro import BlockAMCSolver, HardwareConfig, format_table
from repro.core.digital import conjugate_gradient
from repro.core.preconditioned import amc_preconditioner, fgmres
from repro.workloads.pde import poisson_1d, poisson_2d, poisson_rhs_1d


def main():
    # ------------------------------------------------------------------
    # 1-D Poisson: tridiagonal Toeplitz, condition ~ (n/pi)^2
    # ------------------------------------------------------------------
    n = 48
    matrix = poisson_1d(n)
    b = poisson_rhs_1d(n, "point")
    exact = np.linalg.solve(matrix, b)
    print(
        f"1-D Poisson, n = {n}, condition number "
        f"{np.linalg.cond(matrix):.0f}\n"
    )

    rows = []
    for label, config in [
        ("ideal hardware", HardwareConfig.ideal()),
        ("5% variation", HardwareConfig.paper_variation()),
    ]:
        result = BlockAMCSolver(config).solve(matrix, b, rng=0)
        rows.append([label, result.relative_error])
    print(format_table(["hardware", "direct BlockAMC error"], rows))

    # The direct analog solve of an ill-conditioned PDE system is rough;
    # the preconditioner deployment recovers digital accuracy.
    prepared = BlockAMCSolver(HardwareConfig.paper_variation()).prepare(matrix, rng=1)
    flexible = fgmres(matrix, b, amc_preconditioner(prepared, rng=2), tol=1e-10)
    cg = conjugate_gradient(matrix, b, tol=1e-10)
    print(
        f"\nFGMRES with analog preconditioner: {flexible.iterations} iterations "
        f"(plain CG: {cg.iterations}) to residual {flexible.final_residual:.1e}"
    )
    print(
        f"final error vs exact: "
        f"{np.linalg.norm(flexible.x - exact) / np.linalg.norm(exact):.2e}\n"
    )

    # ------------------------------------------------------------------
    # 2-D Poisson: the 5-point stencil, mostly-zero matrix (OFF cells)
    # ------------------------------------------------------------------
    grid = 7
    matrix2 = poisson_2d(grid)
    rng = np.random.default_rng(3)
    b2 = rng.normal(size=grid * grid)
    result = BlockAMCSolver(HardwareConfig.paper_variation()).solve(matrix2, b2, rng=4)
    density = float(np.mean(matrix2 != 0.0))
    print(
        f"2-D Poisson on a {grid}x{grid} grid ({grid*grid}x{grid*grid} system, "
        f"{density:.0%} non-zeros -> the rest are OFF cells):"
    )
    print(f"  direct BlockAMC relative error: {result.relative_error:.3f}")
    print(
        "  (sparsity costs nothing on a crossbar — zero entries are simply "
        "unprogrammed cells)"
    )


if __name__ == "__main__":
    main()
