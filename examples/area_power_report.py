"""Area/power report: the paper's Fig. 10 plus a scaling extrapolation.

Prints the component-level area and power breakdown of the three solver
architectures at n = 512 (the paper's operating point) and extrapolates
the savings across sizes, using the calibrated cost model.

Run:  python examples/area_power_report.py
"""

from repro import format_table
from repro.analysis.costmodel import (
    ARCHITECTURES,
    ComponentCosts,
    savings_vs_original,
    solver_cost_breakdown,
)


def main():
    costs = ComponentCosts.paper_calibrated()

    rows = []
    for arch in ARCHITECTURES:
        b = solver_cost_breakdown(arch, 512, costs)
        rows.append(
            [
                arch,
                b.counts.opa_count,
                b.counts.dac_count,
                b.counts.adc_count,
                b.total_area_mm2,
                b.total_power_w * 1e3,
            ]
        )
    print(
        format_table(
            ["solver", "OPAs", "DACs", "ADCs", "area mm^2", "power mW"],
            rows,
            title="Fig. 10 — solver cost at n = 512 (calibrated units)",
        )
    )

    print()
    rows = []
    for n in (64, 128, 256, 512, 1024, 2048):
        savings = savings_vs_original(n, costs)
        rows.append(
            [
                n,
                savings["blockamc-1stage"]["area"],
                savings["blockamc-1stage"]["power"],
                savings["blockamc-2stage"]["area"],
                savings["blockamc-2stage"]["power"],
            ]
        )
    print(
        format_table(
            ["size", "1stg area", "1stg power", "2stg area", "2stg power"],
            rows,
            title="Savings vs original AMC across problem sizes",
        )
    )

    print(
        "\nThe one-stage macro halves every periphery component (shared "
        "op-amp column); the two-stage solver trades some of that back "
        "for separately deployed INV/MVM op-amps, as the paper notes."
    )


if __name__ == "__main__":
    main()
