"""AMC as a seed / preconditioner for digital iterative solvers.

The paper (Sec. IV): "AMC is hard to achieve high precision, rather it
is positioned to provide a seed solution (or equivalently as a
preconditioner) for digital computers, to speed up the convergence of
iterative algorithms." This example quantifies both deployment modes:

1. warm-starting conjugate gradients with the analog solution;
2. analog-inner iterative refinement down to 1e-10.

Run:  python examples/preconditioned_refinement.py
"""

import numpy as np

from repro import BlockAMCSolver, HardwareConfig, format_table, random_vector, wishart_matrix
from repro.core.digital import conjugate_gradient, gmres
from repro.core.refinement import iterative_refinement


def main():
    n = 128
    matrix = wishart_matrix(n, rng=0, aspect=8.0)
    b = random_vector(n, rng=1)

    prepared = BlockAMCSolver(HardwareConfig.paper_variation()).prepare(matrix, rng=2)
    seed = prepared.solve(b, rng=3)
    print(
        f"{n}x{n} Wishart system; analog seed relative error = "
        f"{seed.relative_error:.3f} "
        f"(analog compute time {seed.analog_time_s*1e6:.2f} us)\n"
    )

    rows = []
    for name, method in [("CG", conjugate_gradient), ("GMRES", gmres)]:
        cold = method(matrix, b, tol=1e-10)
        warm = method(matrix, b, x0=seed.x, tol=1e-10)
        rows.append([name, cold.iterations, warm.iterations,
                     1.0 - warm.iterations / cold.iterations])
    print(
        format_table(
            ["method", "cold iters", "AMC-seeded iters", "saved"],
            rows,
            title="Warm-starting digital Krylov methods with the analog seed",
        )
    )

    stream = np.random.default_rng(4)
    refined = iterative_refinement(
        lambda r: prepared.solve(r, rng=stream).x, matrix, b, tol=1e-10
    )
    print(
        f"\nAnalog-inner iterative refinement: {refined.iterations} iterations "
        f"to residual {refined.final_residual:.1e} "
        f"(contraction {refined.contraction_rate:.2f}/iter)."
    )
    print(
        "Each refinement iteration costs one O(n^2) digital residual plus "
        "one constant-time analog solve — vs O(n^3) for a direct solve."
    )


if __name__ == "__main__":
    main()
