"""Circuit playground: the Fig. 1 AMC circuits at the netlist level.

Builds the paper's MVM and INV crosspoint circuits as raw netlists
(resistors, op-amps, sources), solves their DC operating points with
the MNA engine — the same computation HSPICE performs for the paper —
and cross-checks the fast algebraic models against them.

Run:  python examples/circuit_playground.py
"""

import numpy as np

from repro import AMCOperations, CrossbarArray, HardwareConfig, format_table
from repro.circuits import build_inv_circuit, build_mvm_circuit, solve_dc
from repro.crossbar.mapping import map_to_conductances

G0 = 100e-6


def main():
    matrix = np.array(
        [
            [1.00, -0.25, 0.10],
            [0.30, 0.90, -0.20],
            [-0.10, 0.20, 0.80],
        ]
    )
    v_in = np.array([0.30, -0.10, 0.20])
    mapped = map_to_conductances(matrix, G0, pre_normalized=True)

    print("Matrix mapped onto a dual 3x3 crossbar pair (G0 = 100 uS)\n")

    # --- MVM circuit (Fig. 1a) -----------------------------------------
    circuit, outputs = build_mvm_circuit(mapped.g_pos, mapped.g_neg, v_in, G0)
    solution = solve_dc(circuit)
    mvm_out = solution.voltages(outputs)
    print(f"MVM netlist: {len(circuit)} elements, {len(circuit.nodes())} nodes")
    rows = [
        [f"out_{i}", float(mvm_out[i]), float((-matrix @ v_in)[i])]
        for i in range(3)
    ]
    print(format_table(["node", "MNA (V)", "-A v (V)"], rows, title="MVM operating point"))

    # --- INV circuit (Fig. 1b) -----------------------------------------
    circuit, outputs = build_inv_circuit(mapped.g_pos, mapped.g_neg, v_in, G0)
    solution = solve_dc(circuit)
    inv_out = solution.voltages(outputs)
    print(f"\nINV netlist: {len(circuit)} elements, {len(circuit.nodes())} nodes")
    rows = [
        [f"out_{i}", float(inv_out[i]), float((-np.linalg.solve(matrix, v_in))[i])]
        for i in range(3)
    ]
    print(format_table(["node", "MNA (V)", "-A^-1 v (V)"], rows, title="INV operating point"))

    # --- Non-ideal circuit vs the fast algebraic model ------------------
    array = CrossbarArray(mapped.g_pos, mapped.g_neg, g_unit=G0, target=mapped)
    config = HardwareConfig.paper_ideal_mapping()
    fast = AMCOperations(config).inv(array, v_in, rng=np.random.default_rng(7))
    mna = AMCOperations(config.with_(use_mna=True)).inv(
        array, v_in, rng=np.random.default_rng(7)
    )
    rows = [
        [f"out_{i}", float(fast.output[i]), float(mna.output[i])]
        for i in range(3)
    ]
    print()
    print(
        format_table(
            ["node", "algebraic model (V)", "full MNA netlist (V)"],
            rows,
            title="Finite gain + offsets: fast model vs SPICE-level solve",
        )
    )
    print(
        f"\nMax disagreement: {float(np.max(np.abs(fast.output - mna.output))):.2e} V "
        "— the fast model is what the Monte-Carlo sweeps use."
    )


if __name__ == "__main__":
    main()
