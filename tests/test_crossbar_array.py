"""Tests for the programmed crossbar array pair."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, ProgrammingConfig
from repro.crossbar.parasitics import ParasiticConfig
from repro.devices.faults import StuckFaultModel
from repro.devices.models import DeviceSpec
from repro.devices.variations import GaussianVariation, RelativeGaussianVariation


MATRIX = np.array([[0.5, -0.25], [-0.1, 1.0]])


class TestProgramIdeal:
    def test_effective_matrix_matches_target(self):
        arr = CrossbarArray.program(MATRIX, rng=0, pre_normalized=True)
        np.testing.assert_allclose(arr.effective_matrix(), MATRIX, atol=1e-12)

    def test_normalization_applied_by_default(self):
        arr = CrossbarArray.program(4.0 * MATRIX, rng=0)
        assert arr.scale == pytest.approx(4.0)
        np.testing.assert_allclose(arr.effective_matrix(), MATRIX, atol=1e-12)

    def test_device_count(self):
        arr = CrossbarArray.program(MATRIX, rng=0, pre_normalized=True)
        assert arr.device_count == 2 * MATRIX.size

    def test_shape(self):
        arr = CrossbarArray.program(np.ones((3, 5)) * 0.5, rng=0, pre_normalized=True)
        assert arr.shape == (3, 5)

    def test_programming_error_zero_for_ideal(self):
        arr = CrossbarArray.program(MATRIX, rng=0, pre_normalized=True)
        np.testing.assert_allclose(arr.programming_error(), 0.0, atol=1e-12)


class TestProgramNonIdeal:
    def test_variation_changes_effective_matrix(self):
        config = ProgrammingConfig(variation=RelativeGaussianVariation(0.05))
        arr = CrossbarArray.program(MATRIX, config, rng=0, pre_normalized=True)
        error = arr.effective_matrix() - MATRIX
        assert np.max(np.abs(error)) > 0.0

    def test_variation_statistics(self):
        rng = np.random.default_rng(0)
        big = rng.uniform(0.2, 1.0, size=(60, 60))
        config = ProgrammingConfig(variation=GaussianVariation(5e-6))
        arr = CrossbarArray.program(big, config, rng=1, pre_normalized=True)
        error = arr.programming_error()
        # sigma in normalized units = 5e-6 / 100e-6 = 0.05
        assert float(np.std(error)) == pytest.approx(0.05, rel=0.1)

    def test_faults_injected(self):
        config = ProgrammingConfig(faults=StuckFaultModel(p_stuck_off=0.5))
        big = np.full((40, 40), 0.7)
        arr = CrossbarArray.program(big, config, rng=2, pre_normalized=True)
        assert np.mean(arr.g_pos == 0.0) > 0.2

    def test_quantization(self):
        config = ProgrammingConfig(
            device=DeviceSpec.finite_window(levels=4), quantize=True
        )
        arr = CrossbarArray.program(MATRIX, config, rng=3, pre_normalized=True)
        distinct = np.unique(np.concatenate([arr.g_pos.ravel(), arr.g_neg.ravel()]))
        assert distinct.size <= 5  # 4 levels + OFF

    def test_write_verify_path(self):
        config = ProgrammingConfig(
            device=DeviceSpec.finite_window(dynamic_range=100.0),
            use_write_verify=True,
        )
        arr = CrossbarArray.program(MATRIX, config, rng=4, pre_normalized=True)
        error = arr.effective_matrix() - MATRIX
        assert 0.0 < np.max(np.abs(error)) < 0.2

    def test_independent_rng_draws(self):
        config = ProgrammingConfig(variation=RelativeGaussianVariation(0.05))
        a = CrossbarArray.program(MATRIX, config, rng=5, pre_normalized=True)
        b = CrossbarArray.program(MATRIX, config, rng=6, pre_normalized=True)
        assert not np.allclose(a.effective_matrix(), b.effective_matrix())


class TestLoads:
    def test_row_sums(self):
        arr = CrossbarArray.program(MATRIX, rng=0, pre_normalized=True)
        expected = np.sum(np.abs(MATRIX), axis=1)
        np.testing.assert_allclose(arr.load_row_sums(), expected, atol=1e-12)

    def test_col_sums(self):
        arr = CrossbarArray.program(MATRIX, rng=0, pre_normalized=True)
        expected = np.sum(np.abs(MATRIX), axis=0)
        np.testing.assert_allclose(arr.load_col_sums(), expected, atol=1e-12)


class TestGuards:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes differ"):
            CrossbarArray(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_negative_conductance_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CrossbarArray(np.full((2, 2), -1e-6), np.zeros((2, 2)))

    def test_views_read_only(self):
        arr = CrossbarArray.program(MATRIX, rng=0, pre_normalized=True)
        with pytest.raises(ValueError):
            arr.g_pos[0, 0] = 1.0

    def test_effective_matrix_cached_per_config(self):
        arr = CrossbarArray.program(MATRIX, rng=0, pre_normalized=True)
        cfg = ParasiticConfig(r_wire=1.0, fidelity="first_order")
        first = arr.effective_matrix(cfg)
        second = arr.effective_matrix(cfg)
        np.testing.assert_array_equal(first, second)

    def test_effective_matrix_returns_copy(self):
        arr = CrossbarArray.program(MATRIX, rng=0, pre_normalized=True)
        out = arr.effective_matrix()
        out[0, 0] = 99.0
        assert arr.effective_matrix()[0, 0] != 99.0

    def test_programming_error_none_for_raw_arrays(self):
        arr = CrossbarArray(np.zeros((2, 2)), np.zeros((2, 2)))
        assert arr.programming_error() is None
