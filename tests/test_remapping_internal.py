"""Unit tests for the remapping internals (greedy assignment)."""

import numpy as np

from repro.crossbar.remapping import _greedy_assignment


class TestGreedyAssignment:
    def test_identity_for_diagonal_cost(self):
        """When the cheapest option for each row is its own slot, greedy
        picks the identity."""
        cost = np.ones((4, 4)) - np.eye(4)
        assignment = _greedy_assignment(cost)
        np.testing.assert_array_equal(assignment, np.arange(4))

    def test_permutation_valid(self):
        rng = np.random.default_rng(0)
        cost = rng.random((7, 7))
        assignment = _greedy_assignment(cost)
        assert sorted(assignment) == list(range(7))

    def test_prefers_cheap_pairs(self):
        cost = np.array(
            [
                [0.0, 5.0],
                [5.0, 1.0],
            ]
        )
        assignment = _greedy_assignment(cost)
        np.testing.assert_array_equal(assignment, [0, 1])

    def test_conflict_resolution(self):
        """Two rows wanting the same slot: the cheaper one wins it."""
        cost = np.array(
            [
                [0.0, 9.0, 9.0],
                [0.1, 9.0, 1.0],
                [9.0, 0.5, 9.0],
            ]
        )
        assignment = _greedy_assignment(cost)
        assert assignment[0] == 0  # row 0 wins slot 0 (cost 0.0 < 0.1)
        assert assignment[1] == 2
        assert assignment[2] == 1

    def test_single_element(self):
        assignment = _greedy_assignment(np.array([[3.0]]))
        np.testing.assert_array_equal(assignment, [0])

    def test_total_cost_not_worse_than_identity_for_structured_case(self):
        """For a cost map with clear structure the greedy beats identity."""
        rng = np.random.default_rng(1)
        n = 10
        cost = rng.random((n, n))
        # Make the anti-diagonal free: the optimum is the reversal.
        for i in range(n):
            cost[i, n - 1 - i] = 0.0
        assignment = _greedy_assignment(cost)
        greedy_total = float(cost[np.arange(n), assignment].sum())
        identity_total = float(np.trace(cost))
        assert greedy_total <= identity_total
        np.testing.assert_array_equal(assignment, np.arange(n)[::-1])
