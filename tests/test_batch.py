"""Tests for the pipelined batch-solve API."""

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.core.blockamc import BlockAMCSolver
from repro.errors import ValidationError
from repro.workloads.matrices import random_vector, wishart_matrix


@pytest.fixture
def prepared():
    matrix = wishart_matrix(8, rng=0)
    return BlockAMCSolver(HardwareConfig.paper_ideal_mapping()).prepare(matrix, rng=1)


class TestSolveBatch:
    def test_all_systems_solved(self, prepared):
        batch = [random_vector(8, rng=seed) for seed in range(2, 7)]
        result = prepared.solve_batch(batch, rng=10)
        assert len(result.results) == 5
        assert result.worst_relative_error < 0.1

    def test_solutions_match_individual_solves(self, prepared):
        """Batch results equal sequential solves with the same stream."""
        batch = [random_vector(8, rng=seed) for seed in (2, 3)]
        rng_batch = np.random.default_rng(11)
        rng_single = np.random.default_rng(11)
        batched = prepared.solve_batch(batch, rng=rng_batch)
        singles = [prepared.solve(b, rng=rng_single) for b in batch]
        for got, expected in zip(batched.results, singles):
            np.testing.assert_array_equal(got.x, expected.x)

    def test_pipelined_throughput_beats_serial(self, prepared):
        batch = [random_vector(8, rng=seed) for seed in range(2, 18)]
        piped = prepared.solve_batch(batch, rng=12, pipelined=True)
        serial = prepared.solve_batch(batch, rng=12, pipelined=False)
        assert piped.throughput_solves_per_s > serial.throughput_solves_per_s

    def test_schedule_covers_batch(self, prepared):
        batch = [random_vector(8, rng=seed) for seed in (2, 3, 4)]
        result = prepared.solve_batch(batch, rng=13)
        problems = {event.problem for event in result.schedule.events}
        assert problems == {0, 1, 2}

    def test_empty_batch_rejected(self, prepared):
        with pytest.raises(ValidationError):
            prepared.solve_batch([])

    def test_timing_knobs(self, prepared):
        batch = [random_vector(8, rng=seed) for seed in (2, 3)]
        slow = prepared.solve_batch(batch, rng=14, t_adc_s=1e-6)
        fast = prepared.solve_batch(batch, rng=14, t_adc_s=1e-9)
        assert fast.schedule.makespan < slow.schedule.makespan
