"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_suite_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99-nope"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7-wishart" in out
        assert "Fig. 7(a)" in out

    def test_costs(self, capsys):
        assert main(["costs", "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "48.8% area" in out
        assert "40.0% power" in out

    def test_solve_one_stage(self, capsys):
        assert main(["solve", "--size", "12", "--hardware", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "blockamc-1stage" in out
        assert "relative error" in out

    def test_solve_two_stage(self, capsys):
        assert main(["solve", "--size", "12", "--stages", "2", "--hardware", "ideal"]) == 0
        assert "blockamc-2stage" in capsys.readouterr().out

    def test_check_healthy_system(self, capsys):
        assert main(["check", "--size", "16", "--family", "wishart"]) == 0
        out = capsys.readouterr().out
        assert "feasibility: OK" in out
        assert "stability margin" in out

    def test_check_poisson_family(self, capsys):
        code = main(["check", "--size", "32", "--family", "poisson"])
        out = capsys.readouterr().out
        assert "findings:" in out
        assert code in (0, 1)

    def test_check_recommends_stages(self, capsys):
        assert main(["check", "--size", "64", "--max-array", "16"]) == 0
        assert "recommended stages: 2" in capsys.readouterr().out

    def test_run_quick_with_csv(self, tmp_path, capsys, monkeypatch):
        # Shrink the quick suite further for CI speed by monkeypatching
        # the suite registry sizes via a tiny custom run.
        csv_path = tmp_path / "series.csv"
        assert main(["run", "fig7-wishart", "--quick", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "fig7-wishart" in out
        assert csv_path.exists()
        assert (tmp_path / "series.csv.raw.csv").exists()


class TestServeCommands:
    def test_serve_with_check(self, capsys):
        assert main([
            "serve", "--requests", "10", "--unique-matrices", "2",
            "--sizes", "8", "12", "--workers", "2", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "service metrics" in out
        assert "bit-identical to sequential reference: True" in out

    def test_serve_hardware_and_solver_choices(self, capsys):
        assert main([
            "serve", "--requests", "6", "--unique-matrices", "2",
            "--sizes", "8", "--hardware", "ideal-mapping",
            "--solver", "blockamc-1stage", "--workers", "1",
        ]) == 0
        assert "requests completed" in capsys.readouterr().out

    def test_submit(self, capsys):
        assert main(["submit", "--size", "12", "--rhs", "4", "--hardware", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "blockamc-1stage" in out
        assert "mean rel. error" in out
        assert "cache hit rate" in out

    def test_submit_rejects_unknown_solver(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--solver", "nope"])

    def test_submit_metrics_json(self, capsys):
        assert main([
            "submit", "--size", "12", "--rhs", "3", "--hardware", "ideal",
            "--metrics-json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["requests_completed"] == 3
        assert data["requests_failed"] == 0
        assert "latency_mean_s" in data
        assert "stages" in data


class TestObservabilityCommands:
    @pytest.fixture(autouse=True)
    def _clean_tracer(self):
        # `serve --trace-dir` configures the process-wide tracer; don't
        # leak it into later tests.
        yield
        from repro.obs import tracer as obs

        obs.disable()

    def test_serve_trace_dir_and_trace_commands(self, tmp_path, capsys):
        trace_dir = tmp_path / "trace"
        assert main([
            "serve", "--requests", "8", "--unique-matrices", "2",
            "--sizes", "8", "12", "--workers", "2", "--check",
            "--trace-dir", str(trace_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to sequential reference: True" in out
        assert "stage queue (ms)" in out  # spans fed the metrics table

        assert main(["trace", "summary", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out
        assert "serve.kernel" in out

        assert main(["trace", "slowest", str(trace_dir), "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "trace " in out
        assert "*" in out  # critical-path marks

        export = tmp_path / "merged.jsonl"
        assert main(["trace", "export", str(trace_dir), "--out", str(export)]) == 0
        lines = export.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["span_id"] for line in lines)

    def test_trace_summary_empty_dir(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path)]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_campaign_status_json(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main([
            "campaign", "run", "fig7-variation", "--store", str(store),
            "--workers", "0", "--max-units", "1",
        ]) == 0  # controlled interruption (--max-units) is not an error
        capsys.readouterr()
        code = main([
            "campaign", "status", "fig7-variation", "--store", str(store), "--json",
        ])
        assert code == 1  # unfinished
        status = json.loads(capsys.readouterr().out)
        assert status["name"] == "fig7-variation"
        assert status["completed_units"] == 1
        assert status["finished"] is False
        assert isinstance(status["pending"], list)
        assert status["total_units"] == status["completed_units"] + len(
            status["pending"]
        ) + len(status["quarantined"])
