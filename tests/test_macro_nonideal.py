"""Macro behaviour under periphery non-idealities not covered elsewhere."""

import math

import numpy as np
import pytest

from repro.amc.config import (
    ConverterConfig,
    HardwareConfig,
    OpAmpConfig,
    SampleHoldConfig,
)
from repro.core.blockamc import BlockAMCSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, wishart_matrix


def _solve(config, n=8, seed=0):
    matrix = wishart_matrix(n, rng=seed)
    b = random_vector(n, rng=seed + 1)
    return BlockAMCSolver(config).solve(matrix, b, rng=seed + 2)


class TestSampleHoldEffects:
    def test_snh_gain_error_degrades_blockamc_only(self):
        """S&H buffers sit only in the macro's cascade — the monolithic
        solver has no inter-op buffering, so it is immune."""
        matrix = wishart_matrix(8, rng=0)
        b = random_vector(8, rng=1)
        config = HardwareConfig.ideal().with_(
            sample_hold=SampleHoldConfig(gain_error=0.01)
        )
        block = BlockAMCSolver(config).solve(matrix, b, rng=2)
        original = OriginalAMCSolver(config).solve(matrix, b, rng=2)
        assert block.relative_error > 1e-4
        assert original.relative_error < 1e-9

    def test_snh_noise_randomizes_solution(self):
        config = HardwareConfig.ideal().with_(
            sample_hold=SampleHoldConfig(noise_sigma_v=1e-3)
        )
        a = _solve(config, seed=10)
        b = _solve(config, seed=10)
        # Same seeds => same noise => identical; different rng => differs.
        np.testing.assert_array_equal(a.x, b.x)
        c = BlockAMCSolver(config).solve(
            wishart_matrix(8, rng=10), random_vector(8, rng=11), rng=99
        )
        assert not np.allclose(a.x, c.x)

    def test_snh_noise_scales_error(self):
        quiet = HardwareConfig.ideal().with_(
            sample_hold=SampleHoldConfig(noise_sigma_v=1e-5)
        )
        loud = HardwareConfig.ideal().with_(
            sample_hold=SampleHoldConfig(noise_sigma_v=1e-2)
        )
        assert _solve(loud).relative_error > _solve(quiet).relative_error


class TestSaturation:
    def test_saturation_flag_reaches_solve_result(self):
        config = HardwareConfig.ideal().with_(
            opamp=OpAmpConfig(
                open_loop_gain=math.inf, v_sat=0.05, input_offset_sigma_v=0.0
            ),
            # Disable ranging headroom relief by keeping converters ideal
            # but v_sat below the input amplitude.
            converters=ConverterConfig.ideal(),
        )
        result = _solve(config)
        assert result.saturated

    def test_no_saturation_with_wide_rails(self):
        config = HardwareConfig.ideal().with_(
            opamp=OpAmpConfig(
                open_loop_gain=math.inf, v_sat=100.0, input_offset_sigma_v=0.0
            )
        )
        assert not _solve(config).saturated


class TestOutputNoise:
    def test_output_noise_propagates(self):
        config = HardwareConfig.ideal().with_(
            opamp=OpAmpConfig(
                open_loop_gain=math.inf,
                input_offset_sigma_v=0.0,
                output_noise_sigma_v=1e-3,
            )
        )
        result = _solve(config)
        assert 1e-5 < result.relative_error < 0.5

    def test_output_noise_fresh_per_operation(self):
        """Unlike offsets, noise differs between the two INV(A1) steps."""
        from repro.amc.ops import AMCOperations
        from repro.crossbar.array import CrossbarArray
        from repro.crossbar.mapping import normalize_matrix

        matrix, _ = normalize_matrix(wishart_matrix(4, rng=3))
        array = CrossbarArray.program(matrix, rng=4, pre_normalized=True)
        config = HardwareConfig.ideal().with_(
            opamp=OpAmpConfig(
                open_loop_gain=math.inf,
                input_offset_sigma_v=0.0,
                output_noise_sigma_v=1e-3,
            )
        )
        ops = AMCOperations(config)
        v = random_vector(4, rng=5) * 0.2
        rng = np.random.default_rng(6)
        first = ops.mvm(array, v, rng=rng).output
        second = ops.mvm(array, v, rng=rng).output
        assert not np.allclose(first, second)


class TestConverterEdgeCases:
    def test_one_bit_converters_still_produce_output(self):
        config = HardwareConfig.ideal().with_(
            converters=ConverterConfig(dac_bits=1, adc_bits=1)
        )
        result = _solve(config)
        assert np.all(np.isfinite(result.x))
        assert result.relative_error > 0.1  # 1-bit data is, of course, rough

    def test_asymmetric_bits(self):
        config = HardwareConfig.ideal().with_(
            converters=ConverterConfig(dac_bits=12, adc_bits=4)
        )
        result = _solve(config)
        assert result.relative_error > 1e-4
