"""Tests for AMC-seeded iterative refinement."""

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.core.blockamc import BlockAMCSolver
from repro.core.refinement import iterative_refinement
from repro.workloads.matrices import random_vector, wishart_matrix


@pytest.fixture
def system():
    rng = np.random.default_rng(0)
    a = wishart_matrix(8, rng)
    b = random_vector(8, rng)
    return a, b


class TestConvergence:
    def test_exact_inner_converges_in_one_iteration(self, system):
        a, b = system
        result = iterative_refinement(lambda r: np.linalg.solve(a, r), a, b)
        assert result.converged
        assert result.iterations == 1

    def test_noisy_inner_contracts(self, system):
        """A ~1% accurate inner solver reaches 1e-8 in a few iterations."""
        a, b = system
        rng = np.random.default_rng(1)

        def noisy(r):
            x = np.linalg.solve(a, r)
            return x * (1.0 + rng.normal(0.0, 0.01, size=x.shape))

        result = iterative_refinement(noisy, a, b, tol=1e-8)
        assert result.converged
        assert result.iterations <= 10
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b), rtol=1e-6)

    def test_contraction_rate_below_one(self, system):
        a, b = system
        rng = np.random.default_rng(2)

        def noisy(r):
            x = np.linalg.solve(a, r)
            return x * (1.0 + rng.normal(0.0, 0.05, size=x.shape))

        result = iterative_refinement(noisy, a, b, tol=1e-10, max_iterations=30)
        assert result.contraction_rate < 1.0

    def test_garbage_inner_does_not_converge(self, system):
        a, b = system
        result = iterative_refinement(
            lambda r: np.zeros_like(r), a, b, max_iterations=5
        )
        assert not result.converged
        assert result.iterations == 5

    def test_amc_inner_solver(self, system):
        """End-to-end: a variation-limited BlockAMC seed refined to 1e-8
        — the deployment mode the paper argues for."""
        a, b = system
        prepared = BlockAMCSolver(HardwareConfig.paper_variation()).prepare(a, rng=3)
        stream = np.random.default_rng(4)
        result = iterative_refinement(
            lambda r: prepared.solve(r, rng=stream).x, a, b, tol=1e-8
        )
        assert result.converged
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b), rtol=1e-6)


class TestGuards:
    def test_zero_b_rejected(self):
        with pytest.raises(ValueError):
            iterative_refinement(lambda r: r, np.eye(2), np.zeros(2))

    def test_residual_history_starts_at_one(self, system):
        a, b = system
        result = iterative_refinement(lambda r: np.linalg.solve(a, r), a, b)
        assert result.residuals[0] == 1.0
