"""Tests for the Monte-Carlo accuracy sweep engine."""

import numpy as np

from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_sweep, run_trials
from repro.core.blockamc import BlockAMCSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import wishart_matrix


FACTORIES = {
    "original": lambda: OriginalAMCSolver(HardwareConfig.paper_variation()),
    "blockamc": lambda: BlockAMCSolver(HardwareConfig.paper_variation()),
}


def _matrix(size, rng):
    return wishart_matrix(size, rng)


class TestRunTrials:
    def test_record_count(self):
        records = run_trials(FACTORIES, _matrix, sizes=[4, 8], trials=3, seed=0)
        assert len(records) == 2 * 2 * 3  # solvers x sizes x trials

    def test_record_fields(self):
        records = run_trials(FACTORIES, _matrix, sizes=[4], trials=1, seed=1)
        record = records[0]
        assert record.solver in FACTORIES
        assert record.size == 4
        assert record.relative_error >= 0.0
        assert record.analog_time_s > 0.0

    def test_deterministic_given_seed(self):
        a = run_trials(FACTORIES, _matrix, sizes=[4], trials=2, seed=7)
        b = run_trials(FACTORIES, _matrix, sizes=[4], trials=2, seed=7)
        assert [r.relative_error for r in a] == [r.relative_error for r in b]

    def test_different_seeds_differ(self):
        a = run_trials(FACTORIES, _matrix, sizes=[8], trials=2, seed=1)
        b = run_trials(FACTORIES, _matrix, sizes=[8], trials=2, seed=2)
        assert [r.relative_error for r in a] != [r.relative_error for r in b]

    def test_paired_trials_share_workload(self):
        """Both solvers see the same matrix/vector per trial: with ideal
        hardware both errors are ~0 and equal in count."""
        factories = {
            "a": lambda: OriginalAMCSolver(HardwareConfig.ideal()),
            "b": lambda: BlockAMCSolver(HardwareConfig.ideal()),
        }
        records = run_trials(factories, _matrix, sizes=[6], trials=2, seed=3)
        assert all(r.relative_error < 1e-7 for r in records)


class TestAggregation:
    def test_sweep_structure(self):
        records = run_trials(FACTORIES, _matrix, sizes=[4, 8], trials=3, seed=4)
        table = accuracy_sweep(records)
        assert set(table) == set(FACTORIES)
        assert set(table["original"]) == {4, 8}
        mean, std = table["original"][4]
        assert mean >= 0.0 and std >= 0.0

    def test_mean_consistent_with_records(self):
        records = run_trials(FACTORIES, _matrix, sizes=[4], trials=5, seed=5)
        table = accuracy_sweep(records)
        manual = np.mean(
            [r.relative_error for r in records if r.solver == "original" and r.size == 4]
        )
        assert table["original"][4][0] == float(manual)
