"""Tests for the per-solve energy model."""

import pytest

from repro.amc.config import HardwareConfig
from repro.analysis.costmodel import ComponentCosts
from repro.analysis.energymodel import EnergyBreakdown, solve_energy
from repro.core.blockamc import BlockAMCSolver
from repro.core.digital import DigitalDirectSolver
from repro.core.original import OriginalAMCSolver
from repro.errors import CostModelError
from repro.workloads.matrices import random_vector, wishart_matrix


@pytest.fixture
def block_result():
    matrix = wishart_matrix(16, rng=0)
    b = random_vector(16, rng=1)
    return BlockAMCSolver(HardwareConfig.paper_ideal_mapping()).solve(matrix, b, rng=2)


class TestSolveEnergy:
    def test_positive_components(self, block_result):
        energy = solve_energy(block_result)
        assert energy.opa > 0.0
        assert energy.rram > 0.0
        assert energy.dac > 0.0
        assert energy.adc > 0.0
        assert energy.total == pytest.approx(
            energy.opa + energy.rram + energy.dac + energy.adc
        )

    def test_as_dict_components(self, block_result):
        energy = solve_energy(block_result)
        assert set(energy.as_dict()) == {"OPA", "RRAM", "DAC", "ADC"}

    def test_digital_result_rejected(self):
        matrix = wishart_matrix(4, rng=3)
        result = DigitalDirectSolver().solve(matrix, random_vector(4, rng=4))
        with pytest.raises(CostModelError):
            solve_energy(result)

    def test_original_vs_block_converter_energy(self):
        """The one-stage macro converts half-length vectors, so its
        converter energy per solve is lower than the baseline's."""
        matrix = wishart_matrix(16, rng=5)
        b = random_vector(16, rng=6)
        config = HardwareConfig.paper_ideal_mapping()
        orig = solve_energy(OriginalAMCSolver(config).solve(matrix, b, rng=7))
        block = solve_energy(BlockAMCSolver(config).solve(matrix, b, rng=7))
        assert block.dac + block.adc < (orig.dac + orig.adc) * 2.1

    def test_custom_costs_scale_linearly(self, block_result):
        base = solve_energy(block_result)
        costs = ComponentCosts.paper_calibrated()
        doubled = ComponentCosts(
            area_opa=costs.area_opa,
            area_dac=costs.area_dac,
            area_adc=costs.area_adc,
            area_cell=costs.area_cell,
            power_opa=2 * costs.power_opa,
            power_dac=2 * costs.power_dac,
            power_adc=2 * costs.power_adc,
            power_cell=2 * costs.power_cell,
        )
        assert solve_energy(block_result, doubled).total == pytest.approx(2 * base.total)

    def test_conversion_time_scales_converter_energy(self, block_result):
        fast = solve_energy(block_result, conversion_time_s=10e-9)
        slow = solve_energy(block_result, conversion_time_s=100e-9)
        assert slow.adc == pytest.approx(10 * fast.adc)
        assert slow.opa == pytest.approx(fast.opa)  # analog part unchanged

    def test_breakdown_is_frozen(self, block_result):
        energy = solve_energy(block_result)
        with pytest.raises(AttributeError):
            energy.opa = 0.0
