"""Tests for the PDE workload generators."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads.pde import poisson_1d, poisson_2d, poisson_rhs_1d


class TestPoisson1D:
    def test_structure(self):
        a = poisson_1d(5)
        np.testing.assert_allclose(np.diag(a), 2.0)
        np.testing.assert_allclose(np.diag(a, 1), -1.0)
        np.testing.assert_allclose(np.diag(a, -1), -1.0)

    def test_symmetric_positive_definite(self):
        a = poisson_1d(16)
        np.testing.assert_allclose(a, a.T)
        assert np.min(np.linalg.eigvalsh(a)) > 0.0

    def test_known_eigenvalues(self):
        """lambda_k = 2 - 2 cos(k pi / (n+1))."""
        n = 8
        a = poisson_1d(n)
        k = np.arange(1, n + 1)
        expected = 2.0 - 2.0 * np.cos(k * np.pi / (n + 1))
        np.testing.assert_allclose(np.sort(np.linalg.eigvalsh(a)), np.sort(expected))

    def test_condition_grows_quadratically(self):
        c8 = np.linalg.cond(poisson_1d(8))
        c32 = np.linalg.cond(poisson_1d(32))
        assert c32 / c8 > 8.0  # ~ (32/8)^2 = 16 in the limit

    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            poisson_1d(1)


class TestPoisson2D:
    def test_shape(self):
        a = poisson_2d(4)
        assert a.shape == (16, 16)

    def test_row_sums_boundary(self):
        """Interior rows sum to 0; boundary-adjacent rows are positive."""
        a = poisson_2d(4)
        sums = a.sum(axis=1)
        assert np.all(sums >= 0.0)
        assert np.any(sums > 0.0)

    def test_symmetric_positive_definite(self):
        a = poisson_2d(5)
        np.testing.assert_allclose(a, a.T)
        assert np.min(np.linalg.eigvalsh(a)) > 0.0

    def test_stencil_weights(self):
        a = poisson_2d(3)
        center = 4  # middle of the 3x3 grid
        assert a[center, center] == 4.0
        assert a[center, center - 1] == -1.0
        assert a[center, center + 3] == -1.0

    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            poisson_2d(1)


class TestRhs:
    def test_point_source(self):
        b = poisson_rhs_1d(9, "point")
        assert b[4] == 1.0
        assert np.sum(b != 0.0) == 1

    def test_uniform(self):
        b = poisson_rhs_1d(10, "uniform")
        np.testing.assert_allclose(b, 0.1)

    def test_random_reproducible(self):
        a = poisson_rhs_1d(10, "random", rng=0)
        b = poisson_rhs_1d(10, "random", rng=0)
        np.testing.assert_array_equal(a, b)

    def test_unknown_source(self):
        with pytest.raises(ValidationError):
            poisson_rhs_1d(10, "gaussian-beam")

    def test_solves_sensibly(self):
        """The discrete solution of -u'' = delta is the tent function."""
        n = 21
        x = np.linalg.solve(poisson_1d(n), poisson_rhs_1d(n, "point"))
        peak = np.argmax(x)
        assert peak == n // 2
        assert np.all(np.diff(x[: peak + 1]) >= -1e-12)
        assert np.all(np.diff(x[peak:]) <= 1e-12)
