"""Tests for the compensated-slicing precision extension."""

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.core.precision import CompensatedMVM, compensated_refinement
from repro.errors import SolverError
from repro.workloads.matrices import random_vector, wishart_matrix


@pytest.fixture
def system():
    matrix = wishart_matrix(12, rng=0)
    b = random_vector(12, rng=1)
    return matrix, b


def _chopped_variation_config():
    """5% programming variation with chopper-stabilized (offset-free)
    amplifiers — the regime where slicing pays off fully."""
    from repro.amc.config import OpAmpConfig

    return HardwareConfig.paper_variation().with_(
        opamp=OpAmpConfig(input_offset_sigma_v=0.0)
    )


class TestCompensatedMVM:
    def test_one_slice_ideal_is_exact(self, system):
        matrix, b = system
        mvm = CompensatedMVM(matrix, HardwareConfig.ideal(), rng=2, slices=1)
        product, ops = mvm.apply(b, rng=3)
        np.testing.assert_allclose(product, matrix @ b, rtol=1e-9, atol=1e-9)
        assert len(ops) == 1

    def test_residual_shrinks_with_slices(self, system):
        matrix, _ = system
        config = HardwareConfig.paper_variation()
        norms = [
            CompensatedMVM(matrix, config, rng=4, slices=k).residual_norm
            for k in (1, 2, 3)
        ]
        assert norms[1] < norms[0] * 0.3
        assert norms[2] < norms[1] * 0.5

    def test_two_slices_beat_one_under_variation(self, system):
        matrix, b = system
        config = HardwareConfig.paper_variation()
        exact = matrix @ b

        def error(slices):
            mvm = CompensatedMVM(matrix, config, rng=5, slices=slices)
            product, _ = mvm.apply(b, rng=6)
            return float(np.linalg.norm(product - exact) / np.linalg.norm(exact))

        assert error(2) < error(1) * 0.5

    def test_ops_count_matches_slices(self, system):
        matrix, b = system
        mvm = CompensatedMVM(matrix, HardwareConfig.paper_variation(), rng=7, slices=3)
        _, ops = mvm.apply(b, rng=8)
        assert len(ops) == 3

    def test_exact_matrix_stops_early(self):
        """With ideal programming the first residual is zero: one array."""
        matrix = np.eye(6) * 0.5
        mvm = CompensatedMVM(matrix, HardwareConfig.ideal(), rng=9, slices=4)
        assert mvm.slice_count == 1

    def test_invalid_slices(self, system):
        matrix, _ = system
        with pytest.raises(SolverError):
            CompensatedMVM(matrix, slices=0)


class TestCompensatedRefinement:
    def test_reaches_deep_tolerance_with_chopped_amps(self, system):
        """5% arrays + 3-slice residuals + precision converters refine
        to 1e-3 — ~50x below the single-array analog accuracy."""
        from repro.amc.config import ConverterConfig

        matrix, b = system
        config = _chopped_variation_config().with_(
            converters=ConverterConfig(dac_bits=16, adc_bits=16)
        )
        result = compensated_refinement(
            matrix, b, config, rng=10, slices=3, tol=1e-3, max_iterations=40
        )
        assert result.converged
        exact = np.linalg.solve(matrix, b)
        np.testing.assert_allclose(result.x, exact, rtol=1e-2, atol=1e-4)

    def test_offsets_set_the_floor(self, system):
        """With 0.25 mV offsets the loop stalls near the offset error —
        the caveat the module documents."""
        matrix, b = system
        result = compensated_refinement(
            matrix, b, HardwareConfig.paper_variation(), rng=10, slices=2,
            tol=1e-6, max_iterations=30,
        )
        assert not result.converged
        assert 1e-4 < result.refinement.final_residual < 0.2

    def test_telemetry_counts(self, system):
        matrix, b = system
        result = compensated_refinement(
            matrix, b, _chopped_variation_config(), rng=11, slices=2, tol=1e-4
        )
        assert result.mvm_operations > 0
        assert result.inv_operations > 0
        # Two MVM slices per refinement iteration (first pass skips the
        # MVM because x = 0).
        assert result.mvm_operations >= 2 * (result.refinement.iterations - 1)

    def test_more_slices_reach_deeper_floor(self, system):
        matrix, b = system
        config = _chopped_variation_config()

        def floor(slices):
            result = compensated_refinement(
                matrix, b, config, rng=12, slices=slices, tol=1e-12, max_iterations=25
            )
            return result.refinement.final_residual

        # One slice stalls near the array accuracy; two slices go deeper.
        assert floor(2) < floor(1) * 0.2

    def test_ideal_hardware_converges_immediately(self, system):
        matrix, b = system
        result = compensated_refinement(
            matrix, b, HardwareConfig.ideal(), rng=13, slices=1, tol=1e-9
        )
        assert result.converged
        assert result.refinement.iterations <= 2
