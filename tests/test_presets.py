"""Tests for device family presets and the PCM drift model."""

import numpy as np
import pytest

from repro.devices.models import PAPER_G0_SIEMENS
from repro.devices.presets import (
    DEVICE_PRESETS,
    DriftModel,
    get_preset,
    mram_preset,
    pcm_preset,
    rram_preset,
)
from repro.errors import DeviceError


class TestPresets:
    def test_all_presets_construct(self):
        for name in DEVICE_PRESETS:
            spec = get_preset(name)
            assert spec.g_max == PAPER_G0_SIEMENS

    def test_rram_continuous(self):
        assert rram_preset().levels is None

    def test_mram_binary(self):
        assert mram_preset().levels == 2

    def test_pcm_levels(self):
        assert pcm_preset().levels == 16

    def test_unknown_family(self):
        with pytest.raises(DeviceError, match="unknown device family"):
            get_preset("dram")

    def test_preset_registry_names(self):
        assert {"rram", "pcm", "mram", "fefet", "rram-64"} <= set(DEVICE_PRESETS)


class TestDriftModel:
    def test_no_drift_identity(self):
        g = np.full(10, 5e-5)
        out = DriftModel.none().apply(g, elapsed_s=1e6)
        np.testing.assert_array_equal(out, g)

    def test_power_law_decay(self):
        model = DriftModel(nu=0.05, t0=1.0)
        g = np.full(4, 1e-4)
        out = model.apply(g, elapsed_s=1e4)
        expected = 1e-4 * (1e4) ** (-0.05)
        np.testing.assert_allclose(out, expected)

    def test_monotone_in_time(self):
        model = DriftModel.pcm_typical()
        g = np.full(4, 1e-4)
        g1 = model.apply(g, elapsed_s=10.0)
        g2 = model.apply(g, elapsed_s=1000.0)
        assert np.all(g2 < g1)
        assert np.all(g1 < g)

    def test_before_reference_time_unchanged(self):
        model = DriftModel(nu=0.1, t0=10.0)
        g = np.full(4, 1e-4)
        np.testing.assert_array_equal(model.apply(g, elapsed_s=5.0), g)

    def test_negative_time_rejected(self):
        with pytest.raises(DeviceError):
            DriftModel.pcm_typical().apply(np.ones(2), elapsed_s=-1.0)

    def test_negative_nu_rejected(self):
        with pytest.raises(DeviceError):
            DriftModel(nu=-0.1)

    def test_drift_degrades_solver_accuracy(self):
        """End-to-end: a PCM-programmed array drifts, the solve degrades."""
        from repro.amc.config import HardwareConfig
        from repro.amc.ops import AMCOperations
        from repro.crossbar.array import CrossbarArray
        from repro.crossbar.mapping import normalize_matrix
        from repro.workloads.matrices import random_vector, wishart_matrix

        matrix, _ = normalize_matrix(wishart_matrix(8, rng=0))
        fresh = CrossbarArray.program(matrix, rng=1, pre_normalized=True)
        model = DriftModel.pcm_typical()
        aged = CrossbarArray(
            model.apply(fresh.g_pos, 1e6),
            model.apply(fresh.g_neg, 1e6),
            g_unit=fresh.g_unit,
        )
        ops = AMCOperations(HardwareConfig.ideal())
        v = random_vector(8, rng=2) * 0.2
        exact_inv = -np.linalg.solve(matrix, v)
        exact_mvm = -(matrix @ v)
        fresh_inv_err = np.max(np.abs(ops.inv(fresh, v).output - exact_inv))
        aged_inv_err = np.max(np.abs(ops.inv(aged, v).output - exact_inv))
        aged_mvm_err = np.max(np.abs(ops.mvm(aged, v).output - exact_mvm))
        # A week of drift at nu = 0.05 halves every conductance: the MVM
        # output shrinks ~2x and the INV output doubles (the input
        # conductance G0 does not drift), so both ops degrade badly.
        assert fresh_inv_err < 1e-10
        assert aged_inv_err > 0.5 * np.max(np.abs(exact_inv))
        assert aged_mvm_err > 0.3 * np.max(np.abs(exact_mvm))
