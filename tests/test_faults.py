"""Tests for stuck-at fault injection."""

import numpy as np
import pytest

from repro.devices.faults import StuckFaultModel
from repro.devices.models import DeviceSpec


SPEC = DeviceSpec(g_min=1e-6, g_max=1e-4, g_off=0.0)


class TestValidation:
    def test_probabilities_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            StuckFaultModel(p_stuck_on=0.6, p_stuck_off=0.6)

    def test_negative_probability_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            StuckFaultModel(p_stuck_on=-0.1)

    def test_trivial_flag(self):
        assert StuckFaultModel().is_trivial
        assert not StuckFaultModel(p_stuck_on=0.01).is_trivial


class TestApply:
    def test_trivial_returns_copy(self):
        g = np.full((4, 4), 5e-5)
        out = StuckFaultModel().apply(g, SPEC, rng=0)
        np.testing.assert_array_equal(out, g)
        assert out is not g

    def test_input_not_modified(self):
        g = np.full((50, 50), 5e-5)
        model = StuckFaultModel(p_stuck_on=0.5)
        _ = model.apply(g, SPEC, rng=0)
        assert np.all(g == 5e-5)

    def test_stuck_values(self):
        g = np.full((100, 100), 5e-5)
        model = StuckFaultModel(p_stuck_on=0.3, p_stuck_off=0.3)
        out = model.apply(g, SPEC, rng=1)
        values = set(np.unique(out))
        assert values <= {0.0, 5e-5, 1e-4}

    def test_fault_fractions_statistical(self):
        g = np.full((200, 200), 5e-5)
        model = StuckFaultModel(p_stuck_on=0.1, p_stuck_off=0.2)
        out = model.apply(g, SPEC, rng=2)
        frac_on = float(np.mean(out == SPEC.g_max))
        frac_off = float(np.mean(out == SPEC.g_off))
        assert frac_on == pytest.approx(0.1, abs=0.01)
        assert frac_off == pytest.approx(0.2, abs=0.01)

    def test_reproducible(self):
        g = np.full((20, 20), 5e-5)
        model = StuckFaultModel(p_stuck_on=0.2)
        a = model.apply(g, SPEC, rng=5)
        b = model.apply(g, SPEC, rng=5)
        np.testing.assert_array_equal(a, b)
