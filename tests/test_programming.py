"""Tests for the write-and-verify programming simulation."""

import numpy as np
import pytest

from repro.devices.models import DeviceSpec
from repro.devices.programming import write_verify
from repro.errors import ProgrammingError


SPEC = DeviceSpec(g_min=1e-6, g_max=1e-4)


class TestWriteVerify:
    def test_reaches_targets(self):
        rng = np.random.default_rng(0)
        target = rng.uniform(SPEC.g_min, SPEC.g_max, size=(16, 16))
        result = write_verify(target, SPEC, rng=1)
        assert result.converged.all()
        # Residuals bounded by tolerance plus read noise headroom.
        assert np.max(np.abs(result.conductance - target)) < 3 * 2.5e-6

    def test_off_cells_skipped(self):
        target = np.array([0.0, 5e-5])
        result = write_verify(target, SPEC, rng=0)
        assert result.conductance[0] == 0.0
        assert result.pulses[0] == 0
        assert result.converged[0]

    def test_pulse_counts_positive_for_programmed_cells(self):
        target = np.full((4, 4), 5e-5)
        result = write_verify(target, SPEC, rng=0)
        assert np.all(result.pulses[target > 0] >= 1)

    def test_mean_pulses(self):
        target = np.full(16, 5e-5)
        result = write_verify(target, SPEC, rng=0)
        assert result.mean_pulses > 0

    def test_strict_raises_on_budget_exhaustion(self):
        target = np.full(4, 9e-5)
        with pytest.raises(ProgrammingError, match="failed to converge"):
            write_verify(target, SPEC, rng=0, max_pulses=2, strict=True)

    def test_non_strict_reports_unconverged(self):
        target = np.full(4, 9e-5)
        result = write_verify(target, SPEC, rng=0, max_pulses=2)
        assert not result.converged.all()

    def test_invalid_max_pulses(self):
        with pytest.raises(ProgrammingError):
            write_verify(np.array([5e-5]), SPEC, max_pulses=0)

    def test_residual_sigma_close_to_paper_assumption(self):
        """The closed loop leaves a sub-tolerance residual spread.

        This is the justification for modelling variation as Gaussian
        with a small sigma (the paper cites the write&verify scheme).
        """
        rng = np.random.default_rng(42)
        target = rng.uniform(2e-5, 9e-5, size=2000)
        result = write_verify(target, SPEC, rng=43, tolerance=2.5e-6)
        sigma = result.residual_sigma(target)
        assert 0.0 < sigma < 5e-6  # 0.05 * G0 in the paper's units

    def test_conductance_within_window(self):
        rng = np.random.default_rng(3)
        target = rng.uniform(SPEC.g_min, SPEC.g_max, size=100)
        result = write_verify(target, SPEC, rng=4)
        assert np.all(result.conductance <= SPEC.g_max)
        assert np.all(result.conductance >= 0.0)

    def test_reproducible(self):
        target = np.full(10, 5e-5)
        a = write_verify(target, SPEC, rng=7).conductance
        b = write_verify(target, SPEC, rng=7).conductance
        np.testing.assert_array_equal(a, b)
