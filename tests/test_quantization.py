"""Unit and property tests for repro.devices.quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.models import DeviceSpec
from repro.devices.quantization import level_grid, quantize_conductance


SPEC64 = DeviceSpec(g_min=1e-6, g_max=1e-4, levels=64)


class TestLevelGrid:
    def test_grid_size(self):
        assert level_grid(SPEC64).size == 64

    def test_grid_endpoints(self):
        grid = level_grid(SPEC64)
        assert grid[0] == pytest.approx(SPEC64.g_min)
        assert grid[-1] == pytest.approx(SPEC64.g_max)

    def test_continuous_device_raises(self):
        with pytest.raises(ValueError, match="continuous"):
            level_grid(DeviceSpec())


class TestQuantize:
    def test_snaps_to_grid(self):
        grid = level_grid(SPEC64)
        out = quantize_conductance(np.array([5.03e-5]), SPEC64)
        assert out[0] in grid

    def test_off_preserved(self):
        out = quantize_conductance(np.array([0.0]), SPEC64)
        assert out[0] == 0.0

    def test_continuous_device_passthrough(self):
        spec = DeviceSpec(g_min=1e-9, g_max=1e-4)
        target = np.array([3.3e-5])
        np.testing.assert_allclose(quantize_conductance(target, spec), target)

    def test_idempotent(self):
        target = np.linspace(SPEC64.g_min, SPEC64.g_max, 37)
        once = quantize_conductance(target, SPEC64)
        twice = quantize_conductance(once, SPEC64)
        np.testing.assert_array_equal(once, twice)

    def test_error_bounded_by_half_step(self):
        step = (SPEC64.g_max - SPEC64.g_min) / (SPEC64.levels - 1)
        target = np.linspace(SPEC64.g_min, SPEC64.g_max, 1001)
        out = quantize_conductance(target, SPEC64)
        assert np.max(np.abs(out - target)) <= step / 2 + 1e-18

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e-4), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, values):
        """Quantization preserves ordering."""
        target = np.sort(np.asarray(values))
        out = quantize_conductance(target, SPEC64)
        assert np.all(np.diff(out) >= 0.0)

    @given(st.floats(min_value=1e-6, max_value=1e-4))
    @settings(max_examples=50, deadline=None)
    def test_output_always_on_grid(self, value):
        grid = level_grid(SPEC64)
        out = quantize_conductance(np.array([value]), SPEC64)
        assert np.min(np.abs(grid - out[0])) < 1e-18
