"""Unit and property tests for repro.crossbar.mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.crossbar.mapping import (
    map_to_conductances,
    normalize_matrix,
    split_signed,
)
from repro.devices.models import PAPER_G0_SIEMENS
from repro.errors import MappingError


finite_matrices = arrays(
    np.float64,
    st.tuples(st.integers(1, 6), st.integers(1, 6)),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)


class TestNormalize:
    def test_peak_is_one(self):
        a = np.array([[2.0, -8.0], [1.0, 4.0]])
        normalized, scale = normalize_matrix(a)
        assert scale == 8.0
        assert np.max(np.abs(normalized)) == pytest.approx(1.0)

    def test_round_trip(self):
        a = np.array([[3.0, -1.0], [0.5, 2.0]])
        normalized, scale = normalize_matrix(a)
        np.testing.assert_allclose(scale * normalized, a)

    def test_zero_matrix_raises(self):
        with pytest.raises(MappingError):
            normalize_matrix(np.zeros((3, 3)))

    @given(finite_matrices)
    @settings(max_examples=50, deadline=None)
    def test_property_peak_le_one(self, a):
        if np.max(np.abs(a)) == 0.0:
            return
        normalized, _ = normalize_matrix(a)
        assert np.max(np.abs(normalized)) <= 1.0 + 1e-12


class TestSplitSigned:
    def test_reconstruction(self):
        a = np.array([[1.0, -2.0], [-3.0, 4.0]])
        pos, neg = split_signed(a)
        np.testing.assert_allclose(pos - neg, a)

    def test_non_negative(self):
        a = np.array([[1.0, -2.0], [-3.0, 4.0]])
        pos, neg = split_signed(a)
        assert np.all(pos >= 0.0)
        assert np.all(neg >= 0.0)

    def test_disjoint_support(self):
        a = np.array([[1.0, -2.0], [-3.0, 0.0]])
        pos, neg = split_signed(a)
        assert np.all(pos * neg == 0.0)

    @given(finite_matrices)
    @settings(max_examples=50, deadline=None)
    def test_property_reconstruction(self, a):
        pos, neg = split_signed(a)
        np.testing.assert_allclose(pos - neg, a, atol=1e-12)
        assert np.all(pos >= 0.0) and np.all(neg >= 0.0)


class TestMapToConductances:
    def test_reconstruct_original(self):
        a = np.array([[2.0, -1.0], [0.5, -4.0]])
        mapped = map_to_conductances(a)
        np.testing.assert_allclose(mapped.reconstruct(), a, rtol=1e-12)

    def test_unit_conductance_bound(self):
        a = np.array([[2.0, -1.0], [0.5, -4.0]])
        mapped = map_to_conductances(a, g_unit=PAPER_G0_SIEMENS)
        assert np.max(mapped.g_pos) <= PAPER_G0_SIEMENS + 1e-18
        assert np.max(mapped.g_neg) <= PAPER_G0_SIEMENS + 1e-18

    def test_pre_normalized_keeps_scale(self):
        a = np.array([[0.5, -0.25], [0.1, 1.0]])
        mapped = map_to_conductances(a, pre_normalized=True, scale=7.0)
        assert mapped.scale == 7.0
        np.testing.assert_allclose(mapped.reconstruct_normalized(), a, rtol=1e-12)

    def test_pre_normalized_rejects_large_entries(self):
        with pytest.raises(MappingError, match="peak magnitude"):
            map_to_conductances(np.array([[1.5]]), pre_normalized=True)

    def test_shape_property(self):
        mapped = map_to_conductances(np.ones((3, 5)))
        assert mapped.shape == (3, 5)

    def test_all_zero_pre_normalized_allowed(self):
        """Zero blocks (A2 or A3 of a triangular system) must map."""
        mapped = map_to_conductances(np.zeros((2, 2)), pre_normalized=True)
        assert np.all(mapped.g_pos == 0.0)
        assert np.all(mapped.g_neg == 0.0)

    @given(finite_matrices)
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, a):
        if np.max(np.abs(a)) == 0.0:
            return
        mapped = map_to_conductances(a)
        np.testing.assert_allclose(mapped.reconstruct(), a, rtol=1e-9, atol=1e-9)
