"""Tests for the complex-to-real system embedding (MIMO workloads)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.linalg import embed_complex_system, extract_complex_solution


class TestEmbedding:
    def test_shapes(self):
        h = np.eye(3) + 1j * np.zeros((3, 3))
        b = np.ones(3) + 0j
        embedded, stacked = embed_complex_system(h, b)
        assert embedded.shape == (6, 6)
        assert stacked.shape == (6,)

    def test_block_structure(self):
        h = np.array([[1 + 2j]])
        embedded, _ = embed_complex_system(h, np.array([0j]))
        np.testing.assert_allclose(embedded, [[1.0, -2.0], [2.0, 1.0]])

    def test_round_trip_solution(self):
        rng = np.random.default_rng(0)
        n = 5
        h = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
        h = h + n * np.eye(n)  # keep well conditioned
        b = rng.normal(size=n) + 1j * rng.normal(size=n)
        embedded, stacked = embed_complex_system(h, b)
        x_real = np.linalg.solve(embedded, stacked)
        x = extract_complex_solution(x_real)
        np.testing.assert_allclose(x, np.linalg.solve(h, b), rtol=1e-9)

    @given(st.integers(min_value=1, max_value=8), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence(self, n, seed):
        """The embedded real system encodes exactly the complex system."""
        rng = np.random.default_rng(seed)
        h = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
        b = rng.normal(size=n) + 1j * rng.normal(size=n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        embedded, _ = embed_complex_system(h, b)
        lhs = embedded @ np.concatenate([x.real, x.imag])
        expected = h @ x
        np.testing.assert_allclose(lhs[:n], expected.real, atol=1e-9)
        np.testing.assert_allclose(lhs[n:], expected.imag, atol=1e-9)

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            embed_complex_system(np.ones((2, 3)), np.ones(2))

    def test_rejects_bad_rhs(self):
        with pytest.raises(ValidationError):
            embed_complex_system(np.eye(2), np.ones(3))

    def test_extract_rejects_odd_length(self):
        with pytest.raises(ValidationError):
            extract_complex_solution(np.ones(3))
