"""Tests for block partitioning and Schur preprocessing."""

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.core.partition import PartitionSpec, build_macro_arrays, prepare_blocks
from repro.crossbar.mapping import normalize_matrix
from repro.errors import PartitionError
from repro.utils.linalg import schur_complement
from repro.workloads.matrices import wishart_matrix


class TestPartitionSpec:
    def test_default_half_split_even(self):
        assert PartitionSpec().resolve(8) == 4

    def test_default_half_split_odd(self):
        """Odd n: the paper picks (n+1)/2 for the leading block."""
        assert PartitionSpec().resolve(7) == 4

    def test_explicit_split(self):
        assert PartitionSpec(3).resolve(8) == 3

    @pytest.mark.parametrize("split", [0, 8, -2])
    def test_invalid_split(self, split):
        with pytest.raises(PartitionError):
            PartitionSpec(split).resolve(8)

    def test_too_small_matrix(self):
        with pytest.raises(PartitionError):
            PartitionSpec().resolve(1)


class TestPrepareBlocks:
    def test_schur_complement_correct(self):
        matrix, _ = normalize_matrix(wishart_matrix(8, rng=0))
        blocks = prepare_blocks(matrix)
        expected = schur_complement(
            matrix[:4, :4], matrix[:4, 4:], matrix[4:, :4], matrix[4:, 4:]
        )
        np.testing.assert_allclose(blocks.a4s, expected)

    def test_schur_scale_at_least_one(self):
        matrix, _ = normalize_matrix(wishart_matrix(8, rng=1))
        blocks = prepare_blocks(matrix)
        assert blocks.schur_scale >= 1.0

    def test_schur_scale_covers_large_entries(self):
        matrix = np.array(
            [
                [0.1, 0.0, 1.0, 0.0],
                [0.0, 0.1, 0.0, 1.0],
                [-1.0, 0.0, 0.1, 0.0],
                [0.0, -1.0, 0.0, 0.1],
            ]
        )
        blocks = prepare_blocks(matrix)
        assert blocks.schur_scale == pytest.approx(np.max(np.abs(blocks.a4s)))
        assert np.max(np.abs(blocks.a4s / blocks.schur_scale)) <= 1.0

    def test_singular_leading_block_raises(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(PartitionError):
            prepare_blocks(matrix)

    def test_size_property(self):
        matrix, _ = normalize_matrix(wishart_matrix(6, rng=2))
        assert prepare_blocks(matrix).size == 6

    def test_triangular_system_schur_equals_a4(self):
        """If A2 (or A3) is zero, A4s reduces to A4 (paper Sec. III-A)."""
        matrix = np.tril(normalize_matrix(wishart_matrix(6, rng=3))[0])
        blocks = prepare_blocks(matrix)
        np.testing.assert_allclose(blocks.a4s, matrix[3:, 3:])


class TestBuildMacroArrays:
    def test_arrays_hold_blocks(self):
        matrix, _ = normalize_matrix(wishart_matrix(8, rng=4))
        blocks = prepare_blocks(matrix)
        arrays = build_macro_arrays(blocks, HardwareConfig.ideal(), rng=5)
        np.testing.assert_allclose(
            arrays.a1.effective_matrix(), blocks.a1, atol=1e-12
        )
        np.testing.assert_allclose(
            arrays.a4s.effective_matrix() / arrays.schur_input_scale,
            blocks.a4s,
            atol=1e-10,
        )

    def test_schur_input_scale_reciprocal(self):
        matrix, _ = normalize_matrix(wishart_matrix(8, rng=6))
        blocks = prepare_blocks(matrix)
        arrays = build_macro_arrays(blocks, HardwareConfig.ideal(), rng=7)
        assert arrays.schur_input_scale == pytest.approx(1.0 / blocks.schur_scale)

    def test_variation_draws_independent_across_arrays(self):
        matrix, _ = normalize_matrix(wishart_matrix(8, rng=8))
        blocks = prepare_blocks(matrix)
        config = HardwareConfig.paper_variation()
        arrays = build_macro_arrays(blocks, config, rng=9)
        err1 = arrays.a1.programming_error()
        err4 = arrays.a4s.programming_error()
        assert err1.shape == err4.shape
        assert not np.allclose(err1, err4)
