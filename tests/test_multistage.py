"""Tests for the multi-stage (two-stage and deeper) BlockAMC solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amc.config import HardwareConfig
from repro.core.multistage import MultiStageSolver
from repro.errors import SolverError
from repro.workloads.matrices import (
    diagonally_dominant_matrix,
    random_vector,
    wishart_matrix,
)


class TestIdealExactness:
    @pytest.mark.parametrize("stages", [1, 2, 3])
    def test_matches_numpy_solve(self, stages):
        matrix = wishart_matrix(16, rng=0)
        b = random_vector(16, rng=1)
        solver = MultiStageSolver(HardwareConfig.ideal(), stages=stages)
        result = solver.solve(matrix, b, rng=2)
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-7, atol=1e-9)

    def test_non_power_of_two_size(self):
        matrix = wishart_matrix(11, rng=3)
        b = random_vector(11, rng=4)
        result = MultiStageSolver(HardwareConfig.ideal(), stages=2).solve(matrix, b, rng=5)
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-7, atol=1e-9)

    @given(
        n=st.integers(min_value=4, max_value=16),
        stages=st.integers(min_value=1, max_value=3),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_exact(self, n, stages, seed):
        rng = np.random.default_rng(seed)
        matrix = diagonally_dominant_matrix(n, rng)
        b = random_vector(n, rng)
        solver = MultiStageSolver(HardwareConfig.ideal(), stages=stages)
        result = solver.solve(matrix, b, rng=seed)
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-6, atol=1e-8)


class TestArchitecture:
    def test_two_stage_array_inventory(self):
        """The paper: a 2-stage partition of a 2^k system yields 16 block
        arrays — 4 per INV macro (x2) plus 4 tiles per MVM block (x2)."""
        matrix = wishart_matrix(16, rng=6)
        result = MultiStageSolver(HardwareConfig.ideal(), stages=2).solve(
            matrix, random_vector(16, rng=7), rng=8
        )
        assert result.metadata["array_count"] == 16
        assert result.metadata["macro_count"] == 2

    def test_two_stage_operation_mix(self):
        """Two macro invocations of A1 (steps 1 and 5) + one of A4s = 15
        macro ops, plus 2 tiled MVMs of 4 partials each = 23 analog ops
        ... per A1 solve; total: 3 macro solves * 5 + 2 * 4 = 23."""
        matrix = wishart_matrix(16, rng=9)
        result = MultiStageSolver(HardwareConfig.ideal(), stages=2).solve(
            matrix, random_vector(16, rng=10), rng=11
        )
        counts = result.operation_counts
        assert counts["inv"] == 9  # 3 macro solves x 3 INV steps
        assert counts["mvm"] == 14  # 3 x 2 macro MVMs + 2 x 4 tile MVMs

    def test_stage1_equivalent_to_single_macro(self):
        matrix = wishart_matrix(8, rng=12)
        b = random_vector(8, rng=13)
        result = MultiStageSolver(HardwareConfig.ideal(), stages=1).solve(matrix, b, rng=14)
        assert result.metadata["macro_count"] == 1
        assert result.metadata["array_count"] == 4
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-8, atol=1e-10)

    def test_conversions_counted(self):
        matrix = wishart_matrix(16, rng=15)
        result = MultiStageSolver(HardwareConfig.ideal(), stages=2).solve(
            matrix, random_vector(16, rng=16), rng=17
        )
        # Digital glue between macros costs extra conversions vs one-stage.
        assert result.metadata["dac_conversions"] > 2
        assert result.metadata["adc_conversions"] > 2

    def test_solver_name_includes_stages(self):
        assert MultiStageSolver(stages=2).name == "blockamc-2stage"
        assert MultiStageSolver(stages=3).name == "blockamc-3stage"

    def test_invalid_stage_count(self):
        with pytest.raises(SolverError):
            MultiStageSolver(stages=0)


class TestPrepared:
    def test_prepare_and_reuse(self):
        matrix = wishart_matrix(16, rng=18)
        solver = MultiStageSolver(HardwareConfig.paper_variation(), stages=2)
        prepared = solver.prepare(matrix, rng=19)
        r1 = prepared.solve(random_vector(16, rng=20), rng=21)
        r2 = prepared.solve(random_vector(16, rng=22), rng=23)
        assert r1.relative_error < 1.0
        assert r2.relative_error < 1.0

    def test_zero_tiles_skipped(self):
        """Block-triangular systems need fewer tile arrays: all-zero
        MVM tiles are never programmed."""
        rng = np.random.default_rng(30)
        full = diagonally_dominant_matrix(16, rng)
        triangular = np.tril(full)
        result = MultiStageSolver(HardwareConfig.ideal(), stages=2).solve(
            triangular, random_vector(16, rng=31), rng=32
        )
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-6, atol=1e-9)
        # The upper-right first-stage block (A2) is all zero: its 4 tiles
        # vanish entirely, so fewer than 16 arrays remain.
        assert result.metadata["array_count"] < 16

    def test_tiny_block_fallback(self):
        """Deep partitioning of a small system hits the direct-INV
        fallback for 1x1 blocks without failing."""
        matrix = diagonally_dominant_matrix(4, np.random.default_rng(24))
        result = MultiStageSolver(HardwareConfig.ideal(), stages=3).solve(
            matrix, random_vector(4, rng=25), rng=26
        )
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-6, atol=1e-9)
