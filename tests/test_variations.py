"""Unit and statistical tests for repro.devices.variations."""

import numpy as np
import pytest

from repro.devices.models import PAPER_G0_SIEMENS
from repro.devices.variations import (
    GaussianVariation,
    LognormalVariation,
    NoVariation,
    RelativeGaussianVariation,
)
from repro.errors import ValidationError


TARGET = np.full((100, 100), 50e-6)


class TestNoVariation:
    def test_identity(self):
        out = NoVariation().apply(TARGET, rng=0)
        np.testing.assert_array_equal(out, TARGET)

    def test_returns_copy(self):
        out = NoVariation().apply(TARGET)
        assert out is not TARGET


class TestGaussianVariation:
    def test_statistics(self):
        sigma = 5e-6
        out = GaussianVariation(sigma).apply(TARGET, rng=0)
        err = out - TARGET
        assert abs(float(np.mean(err))) < sigma / 10
        assert float(np.std(err)) == pytest.approx(sigma, rel=0.05)

    def test_off_cells_untouched(self):
        target = np.array([0.0, 50e-6])
        out = GaussianVariation(5e-6).apply(target, rng=1)
        assert out[0] == 0.0
        assert out[1] != target[1]

    def test_never_negative(self):
        target = np.full(10_000, 1e-9)  # tiny targets, noise would go negative
        out = GaussianVariation(5e-6).apply(target, rng=2)
        assert np.all(out >= 0.0)

    def test_reproducible(self):
        a = GaussianVariation(1e-6).apply(TARGET, rng=3)
        b = GaussianVariation(1e-6).apply(TARGET, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_paper_reference_sigma(self):
        model = GaussianVariation.paper_reference()
        assert model.sigma == pytest.approx(0.05 * PAPER_G0_SIEMENS)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValidationError):
            GaussianVariation(0.0)


class TestRelativeGaussianVariation:
    def test_spread_scales_with_target(self):
        model = RelativeGaussianVariation(0.05)
        big = np.full(20_000, 100e-6)
        small = np.full(20_000, 1e-6)
        std_big = np.std(model.apply(big, rng=0) - big)
        std_small = np.std(model.apply(small, rng=0) - small)
        assert std_big == pytest.approx(0.05 * 100e-6, rel=0.05)
        assert std_small == pytest.approx(0.05 * 1e-6, rel=0.05)

    def test_off_cells_untouched(self):
        out = RelativeGaussianVariation(0.1).apply(np.array([0.0]), rng=0)
        assert out[0] == 0.0

    def test_paper_reference(self):
        assert RelativeGaussianVariation.paper_reference().sigma_rel == 0.05

    def test_never_negative(self):
        out = RelativeGaussianVariation(2.0).apply(np.full(10_000, 1e-6), rng=1)
        assert np.all(out >= 0.0)


class TestLognormalVariation:
    def test_multiplicative(self):
        model = LognormalVariation(0.05)
        out = model.apply(TARGET, rng=0)
        ratio = out / TARGET
        assert float(np.std(np.log(ratio))) == pytest.approx(0.05, rel=0.05)

    def test_always_positive(self):
        out = LognormalVariation(1.0).apply(np.full(1000, 1e-6), rng=1)
        assert np.all(out > 0.0)

    def test_off_cells_untouched(self):
        out = LognormalVariation(0.5).apply(np.array([0.0, 1e-5]), rng=2)
        assert out[0] == 0.0
