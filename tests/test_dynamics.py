"""Tests for the settling-time models."""

import numpy as np
import pytest

from repro.circuits.dynamics import (
    inv_eigenvalue_margin,
    inv_settling_time,
    is_inv_stable,
    mvm_settling_time,
)
from repro.errors import ConvergenceError


class TestMVMSettling:
    def test_positive(self):
        g = np.full((4, 4), 100e-6)
        assert mvm_settling_time(g, 100e-6, 100e6) > 0.0

    def test_faster_with_higher_gbwp(self):
        g = np.full((4, 4), 100e-6)
        slow = mvm_settling_time(g, 100e-6, 10e6)
        fast = mvm_settling_time(g, 100e-6, 100e6)
        assert fast == pytest.approx(slow / 10.0)

    def test_larger_array_settles_slower(self):
        """The paper: settling is linear in the max row conductance sum."""
        small = mvm_settling_time(np.full((4, 4), 100e-6), 100e-6, 100e6)
        large = mvm_settling_time(np.full((64, 64), 100e-6), 100e-6, 100e6)
        assert large > small

    def test_tighter_epsilon_takes_longer(self):
        g = np.full((4, 4), 100e-6)
        loose = mvm_settling_time(g, 100e-6, 100e6, epsilon=1e-2)
        tight = mvm_settling_time(g, 100e-6, 100e6, epsilon=1e-6)
        assert tight > loose


class TestINVStability:
    def test_spd_stable(self):
        assert is_inv_stable(np.eye(3))

    def test_negative_definite_unstable(self):
        assert not is_inv_stable(-np.eye(3))

    def test_margin_value(self):
        assert inv_eigenvalue_margin(np.diag([0.5, 2.0])) == pytest.approx(0.5)

    def test_margin_with_complex_eigenvalues(self):
        # Rotation-like matrix: eigenvalues 1 +- i, real part 1.
        a = np.array([[1.0, -1.0], [1.0, 1.0]])
        assert inv_eigenvalue_margin(a) == pytest.approx(1.0)


class TestINVSettling:
    def test_positive(self):
        assert inv_settling_time(np.eye(3), 100e6) > 0.0

    def test_smaller_eigenvalue_settles_slower(self):
        fast = inv_settling_time(np.diag([1.0, 1.0]), 100e6)
        slow = inv_settling_time(np.diag([0.01, 1.0]), 100e6)
        assert slow > fast

    def test_unstable_raises(self):
        with pytest.raises(ConvergenceError, match="unstable"):
            inv_settling_time(-np.eye(2), 100e6)
