"""Public-API surface contract: every exported name resolves.

Guards against `__all__` entries drifting out of sync with the actual
module contents (a common failure mode of hand-maintained exports).
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.amc",
    "repro.analysis",
    "repro.circuits",
    "repro.core",
    "repro.crossbar",
    "repro.devices",
    "repro.utils",
    "repro.workloads",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} must declare __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_sorted(package):
    """Sorted __all__ keeps diffs reviewable."""
    module = importlib.import_module(package)
    exported = [n for n in module.__all__ if n != "__version__"]
    assert exported == sorted(exported), f"{package}.__all__ is not sorted"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_star_import_clean():
    namespace = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate contract test
    assert "BlockAMCSolver" in namespace
    assert "HardwareConfig" in namespace
