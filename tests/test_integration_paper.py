"""Integration tests asserting the paper's qualitative claims.

These are the repository's contract with the paper: each test encodes one
of the evaluation section's directional findings at CI-friendly sizes.
The benches regenerate the full curves; these tests pin the shapes.
"""

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import accuracy_sweep, run_trials
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import random_vector, toeplitz_matrix, wishart_matrix


def _mean_errors(config_factory, matrix_factory, sizes, trials=4, seed=0, stages=None):
    if stages is None:
        factories = {
            "original": lambda: OriginalAMCSolver(config_factory()),
            "blockamc": lambda: BlockAMCSolver(config_factory()),
        }
    else:
        factories = {
            "original": lambda: OriginalAMCSolver(config_factory()),
            "blockamc": lambda: MultiStageSolver(config_factory(), stages=stages),
        }
    records = run_trials(factories, matrix_factory, sizes, trials, seed)
    return accuracy_sweep(records)


class TestFig6IdealMapping:
    """Fig. 6: ideal conductances, realistic periphery."""

    def test_error_grows_with_size(self):
        table = _mean_errors(
            HardwareConfig.paper_ideal_mapping, wishart_matrix, sizes=[8, 64], trials=6
        )
        assert table["original"][64][0] > table["original"][8][0]

    def test_blockamc_at_least_as_accurate(self):
        table = _mean_errors(
            HardwareConfig.paper_ideal_mapping, wishart_matrix, sizes=[32, 64], trials=6
        )
        for size in (32, 64):
            assert table["blockamc"][size][0] <= table["original"][size][0] * 1.1

    def test_per_step_scatter_available(self):
        """Fig. 6(a): every step's numerical-vs-BlockAMC pairs exist."""
        matrix = wishart_matrix(16, rng=0)
        result = BlockAMCSolver(HardwareConfig.paper_ideal_mapping()).solve(
            matrix, random_vector(16, rng=1), rng=2
        )
        refs = result.metadata["reference_steps"]
        outs = result.metadata["step_outputs"]
        assert set(refs) == {"step1", "step2", "step3", "step4", "step5"}
        for step, ref in refs.items():
            actual = next(v for k, v in outs.items() if k.startswith(step))
            # Hardware output tracks the numerical reference closely.
            assert np.max(np.abs(actual - ref)) < 0.15 * (np.max(np.abs(ref)) + 1e-9)


class TestFig7Variation:
    """Fig. 7: 5% programming variation."""

    def test_wishart_blockamc_slightly_better(self):
        table = _mean_errors(
            HardwareConfig.paper_variation, wishart_matrix, sizes=[32], trials=8
        )
        assert table["blockamc"][32][0] <= table["original"][32][0]

    def test_errors_nonzero_under_variation(self):
        table = _mean_errors(
            HardwareConfig.paper_variation, wishart_matrix, sizes=[16], trials=4
        )
        assert table["original"][16][0] > 0.01

    def test_toeplitz_handled(self):
        table = _mean_errors(
            HardwareConfig.paper_variation, toeplitz_matrix, sizes=[16, 64], trials=4
        )
        for size in (16, 64):
            assert 0.0 < table["blockamc"][size][0] < 1.0


class TestFig8TwoStage:
    """Fig. 8: the two-stage solver matches the one-stage accuracy."""

    def test_two_stage_comparable_accuracy(self):
        table = _mean_errors(
            HardwareConfig.paper_variation, wishart_matrix, sizes=[32], trials=6, stages=2
        )
        assert table["blockamc"][32][0] <= table["original"][32][0] * 1.2

    def test_two_stage_array_inventory_16(self):
        matrix = wishart_matrix(32, rng=3)
        result = MultiStageSolver(HardwareConfig.paper_variation(), stages=2).solve(
            matrix, random_vector(32, rng=4), rng=5
        )
        assert result.metadata["array_count"] == 16


class TestFig9Interconnect:
    """Fig. 9: wire resistance hurts, the original solver most."""

    def test_interconnect_increases_error(self):
        plain = _mean_errors(
            HardwareConfig.paper_variation, wishart_matrix, sizes=[64], trials=6
        )
        wired = _mean_errors(
            HardwareConfig.paper_interconnect, wishart_matrix, sizes=[64], trials=6
        )
        assert wired["original"][64][0] > plain["original"][64][0]

    def test_blockamc_more_robust_to_interconnect(self):
        table = _mean_errors(
            HardwareConfig.paper_interconnect, wishart_matrix, sizes=[64], trials=6
        )
        assert table["blockamc"][64][0] < table["original"][64][0]


class TestSeedSolutionClaim:
    """Sec. IV: AMC provides a useful seed for digital iterative methods."""

    def test_amc_seed_accelerates_cg(self):
        from repro.core.digital import conjugate_gradient

        # Large, well-conditioned system: CG converges well before the
        # n-iteration exact-termination bound, so a seed saves work.
        matrix = wishart_matrix(64, rng=np.random.default_rng(6), aspect=8.0)
        b = random_vector(64, rng=7)
        seed_x = BlockAMCSolver(HardwareConfig.paper_variation()).solve(
            matrix, b, rng=8
        ).x
        cold = conjugate_gradient(matrix, b, tol=1e-10)
        warm = conjugate_gradient(matrix, b, x0=seed_x, tol=1e-10)
        assert warm.iterations < cold.iterations
