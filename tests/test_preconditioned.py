"""Tests for flexible GMRES with (noisy) analog preconditioning."""

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.core.blockamc import BlockAMCSolver
from repro.core.digital import gmres
from repro.core.preconditioned import amc_preconditioner, fgmres
from repro.errors import SolverError
from repro.workloads.matrices import random_vector, toeplitz_matrix, wishart_matrix


@pytest.fixture
def system():
    rng = np.random.default_rng(0)
    a = wishart_matrix(24, rng)
    b = random_vector(24, rng)
    return a, b


class TestFGMRES:
    def test_exact_preconditioner_converges_immediately(self, system):
        a, b = system
        result = fgmres(a, b, lambda r: np.linalg.solve(a, r), tol=1e-10)
        assert result.converged
        assert result.iterations <= 2
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b), rtol=1e-8)

    def test_identity_preconditioner_reduces_to_gmres(self, system):
        a, b = system
        flexible = fgmres(a, b, lambda r: r, tol=1e-10)
        plain = gmres(a, b, tol=1e-10)
        assert flexible.converged and plain.converged
        np.testing.assert_allclose(flexible.x, plain.x, rtol=1e-6)

    def test_noisy_preconditioner_still_converges(self, system):
        """The flexible formulation absorbs a preconditioner that is
        different on every application — plain PCG/PGMRES would not."""
        a, b = system
        rng = np.random.default_rng(1)

        def noisy(r):
            z = np.linalg.solve(a, r)
            return z * (1.0 + rng.normal(0.0, 0.05, size=z.shape))

        result = fgmres(a, b, noisy, tol=1e-10)
        assert result.converged
        assert result.iterations < 24  # far fewer than unpreconditioned
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b), rtol=1e-7)

    def test_noisy_preconditioner_beats_no_preconditioner(self, system):
        a, b = system
        rng = np.random.default_rng(2)

        def noisy(r):
            z = np.linalg.solve(a, r)
            return z * (1.0 + rng.normal(0.0, 0.05, size=z.shape))

        plain = gmres(a, b, tol=1e-10)
        flexible = fgmres(a, b, noisy, tol=1e-10)
        assert flexible.iterations < plain.iterations

    def test_restart_path(self, system):
        a, b = system
        rng = np.random.default_rng(3)

        def weak(r):
            z = np.linalg.solve(a, r)
            return z * (1.0 + rng.normal(0.0, 0.4, size=z.shape))

        result = fgmres(a, b, weak, tol=1e-10, restart=4)
        assert result.converged

    def test_budget_exhaustion_reported(self, system):
        a, b = system
        result = fgmres(a, b, lambda r: np.zeros_like(r), tol=1e-12, max_iter=6)
        assert not result.converged
        assert result.iterations == 6

    def test_zero_b_rejected(self):
        with pytest.raises(SolverError):
            fgmres(np.eye(3), np.zeros(3), lambda r: r)

    def test_bad_restart_rejected(self, system):
        a, b = system
        with pytest.raises(SolverError):
            fgmres(a, b, lambda r: r, restart=0)

    def test_warm_start(self, system):
        a, b = system
        x = np.linalg.solve(a, b)
        result = fgmres(a, b, lambda r: r, x0=x, tol=1e-9)
        assert result.converged
        assert result.iterations == 0


class TestAMCPreconditioner:
    def test_end_to_end_with_analog_hardware(self):
        """The deployment the paper argues for: a 5%-accurate analog
        preconditioner drives FGMRES to 1e-10 in a handful of steps."""
        rng = np.random.default_rng(4)
        a = toeplitz_matrix(32, rng)
        b = random_vector(32, rng)
        prepared = BlockAMCSolver(HardwareConfig.paper_variation()).prepare(a, rng=5)
        preconditioner = amc_preconditioner(prepared, rng=6)
        result = fgmres(a, b, preconditioner, tol=1e-10)
        plain = gmres(a, b, tol=1e-10)
        assert result.converged
        assert result.iterations < plain.iterations
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b), rtol=1e-6)

    def test_accepts_generator(self, system):
        a, b = system
        prepared = BlockAMCSolver(HardwareConfig.paper_variation()).prepare(a, rng=7)
        preconditioner = amc_preconditioner(prepared, rng=np.random.default_rng(8))
        z = preconditioner(b)
        assert z.shape == b.shape


class TestFgmresHappyBreakdown:
    """Regression: a breakdown column must end its cycle (like gmres).

    A degenerate preconditioner that collapses every residual onto one
    direction exhausts the preconditioned Krylov space after two steps.
    Before the fix the loop kept iterating with a zero basis vector —
    and the *next* preconditioner application received that all-zero
    vector, which an analog preconditioner (``prepared.solve``
    validates its input) rejects outright, crashing the solve.
    """

    def _degenerate(self, n):
        direction = np.ones(n)

        def precondition(r):
            r = np.asarray(r, dtype=float)
            if not np.any(r):
                raise AssertionError(
                    "preconditioner received an all-zero vector "
                    "(zero Krylov column leaked past the breakdown)"
                )
            if r.ndim == 2:  # block form (fgmres_many)
                return np.tile(direction, (r.shape[0], 1))
            return direction.copy()

        return precondition

    def test_scalar_breakdown_terminates_cycle(self):
        rng = np.random.default_rng(1)
        a = wishart_matrix(8, rng)
        b = random_vector(8, rng)
        result = fgmres(a, b, self._degenerate(8), tol=0.0, max_iter=12)
        assert not result.converged
        assert result.iterations == 12  # budget honoured, no crash

    def test_block_breakdown_never_reaches_preconditioner(self):
        from repro.core.preconditioned import fgmres_many

        rng = np.random.default_rng(2)
        a = wishart_matrix(8, rng)
        bs = np.stack([random_vector(8, rng) for _ in range(3)])
        results = fgmres_many(a, bs, self._degenerate(8), tol=0.0, max_iter=12)
        for result in results:
            assert not result.converged
            assert result.iterations == 12

    def test_analog_block_preconditioner_survives_breakdown(self):
        """The original crash vector: an analog preconditioner rejects
        all-zero inputs; post-fix the zero column never reaches it."""
        from repro.core.preconditioned import amc_block_preconditioner, fgmres_many

        rng = np.random.default_rng(3)
        a = wishart_matrix(8, rng)
        bs = np.stack([random_vector(8, rng) for _ in range(2)])
        prepared = BlockAMCSolver(HardwareConfig.paper_variation()).prepare(a, rng=5)
        results = fgmres_many(
            a, bs, amc_block_preconditioner(prepared, rng=0), tol=0.0, max_iter=10
        )
        for result in results:
            assert result.iterations == 10
            assert result.final_residual < 1e-9  # solution exact to rounding
