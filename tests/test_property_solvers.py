"""End-to-end property tests on solver invariants.

These complement the per-module tests with whole-pipeline properties:
linearity, scale invariance, solver equivalence in the ideal limit, and
monotonicity of error in the non-ideality magnitude.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amc.config import HardwareConfig, OpAmpConfig
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.crossbar.array import ProgrammingConfig
from repro.devices.variations import RelativeGaussianVariation
from repro.workloads.matrices import diagonally_dominant_matrix, random_vector


def _system(n, seed):
    rng = np.random.default_rng(seed)
    return diagonally_dominant_matrix(n, rng), random_vector(n, rng)


class TestSolverEquivalenceIdealLimit:
    @given(n=st.integers(3, 10), seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_all_solvers_agree_ideal(self, n, seed):
        matrix, b = _system(n, seed)
        config = HardwareConfig.ideal()
        x_orig = OriginalAMCSolver(config).solve(matrix, b, rng=seed).x
        x_one = BlockAMCSolver(config).solve(matrix, b, rng=seed).x
        x_two = MultiStageSolver(config, stages=2).solve(matrix, b, rng=seed).x
        reference = np.linalg.solve(matrix, b)
        for x in (x_orig, x_one, x_two):
            np.testing.assert_allclose(x, reference, rtol=1e-6, atol=1e-8)


class TestScaleInvariance:
    @given(
        seed=st.integers(0, 2**31),
        matrix_scale=st.floats(min_value=1e-2, max_value=1e3),
        b_scale=st.floats(min_value=1e-2, max_value=1e3),
    )
    @settings(max_examples=15, deadline=None)
    def test_solution_scales_correctly(self, seed, matrix_scale, b_scale):
        """Solving (cA) x = (db) gives (d/c) A^-1 b exactly in the
        ideal limit — normalization and converter scaling must cancel."""
        matrix, b = _system(6, seed)
        config = HardwareConfig.ideal()
        base = BlockAMCSolver(config).solve(matrix, b, rng=seed).x
        scaled = BlockAMCSolver(config).solve(
            matrix_scale * matrix, b_scale * b, rng=seed
        ).x
        np.testing.assert_allclose(
            scaled, base * (b_scale / matrix_scale), rtol=1e-6, atol=1e-10
        )


class TestErrorMonotonicity:
    def test_error_grows_with_variation_sigma(self):
        matrix, b = _system(12, 0)
        means = []
        for sigma in (0.01, 0.05, 0.15):
            config = HardwareConfig(
                opamp=OpAmpConfig(open_loop_gain=np.inf, input_offset_sigma_v=0.0),
                programming=ProgrammingConfig(
                    variation=RelativeGaussianVariation(sigma)
                ),
            )
            errors = [
                BlockAMCSolver(config).solve(matrix, b, rng=t).relative_error
                for t in range(8)
            ]
            means.append(np.mean(errors))
        assert means[0] < means[1] < means[2]

    def test_error_grows_with_wire_resistance(self):
        from repro.crossbar.parasitics import ParasiticConfig

        matrix, b = _system(16, 1)
        errors = []
        for r_wire in (0.5, 2.0, 8.0):
            config = HardwareConfig.ideal().with_(
                parasitics=ParasiticConfig(r_wire=r_wire, fidelity="first_order")
            )
            errors.append(
                OriginalAMCSolver(config).solve(matrix, b, rng=2).relative_error
            )
        assert errors[0] < errors[1] < errors[2]


class TestResidualConsistency:
    @given(n=st.integers(3, 10), seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_reported_error_matches_recomputation(self, n, seed):
        matrix, b = _system(n, seed)
        result = BlockAMCSolver(HardwareConfig.paper_variation()).solve(
            matrix, b, rng=seed
        )
        manual = np.sum(np.abs(result.x - result.reference)) / np.sum(
            np.abs(result.reference)
        )
        assert result.relative_error == pytest.approx(manual)
