"""Tests for the MNA DC solver against hand-solvable circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.mna import solve_dc
from repro.circuits.netlist import Circuit
from repro.errors import CircuitError, SingularCircuitError


class TestBasicNetworks:
    def test_voltage_divider(self):
        c = Circuit()
        c.vsource("in", "0", 10.0, name="V1")
        c.resistor("in", "mid", 1000.0)
        c.resistor("mid", "0", 1000.0)
        sol = solve_dc(c)
        assert sol.voltage("mid") == pytest.approx(5.0)

    def test_source_current(self):
        c = Circuit()
        c.vsource("a", "0", 1.0, name="V1")
        c.resistor("a", "0", 100.0)
        sol = solve_dc(c)
        # 10 mA flows out of the + terminal through the resistor; the
        # branch current of the source is -10 mA by the MNA convention.
        assert sol.current("V1") == pytest.approx(-0.01)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.isource("a", "0", 2e-3)
        c.resistor("a", "0", 500.0)
        sol = solve_dc(c)
        assert sol.voltage("a") == pytest.approx(1.0)

    def test_wheatstone_balanced(self):
        c = Circuit()
        c.vsource("top", "0", 10.0)
        for a, b, r in [
            ("top", "l", 100.0),
            ("top", "r", 100.0),
            ("l", "0", 100.0),
            ("r", "0", 100.0),
        ]:
            c.resistor(a, b, r)
        c.resistor("l", "r", 50.0)  # bridge carries no current when balanced
        sol = solve_dc(c)
        assert sol.voltage("l") == pytest.approx(sol.voltage("r"))

    def test_vcvs_gain(self):
        c = Circuit()
        c.vsource("in", "0", 0.5)
        c.vcvs("out", "0", "in", "0", 4.0)
        c.resistor("out", "0", 1e3)
        sol = solve_dc(c)
        assert sol.voltage("out") == pytest.approx(2.0)

    def test_ground_spelling(self):
        c = Circuit()
        c.vsource("a", "gnd", 3.0)
        c.resistor("a", "GND", 10.0)
        sol = solve_dc(c)
        assert sol.voltage("a") == pytest.approx(3.0)
        assert sol.voltage("gnd") == 0.0


class TestOpAmps:
    def test_ideal_inverting_amplifier(self):
        c = Circuit()
        c.vsource("in", "0", 1.0)
        c.resistor("in", "sum", 1e3)
        c.resistor("out", "sum", 2e3)
        c.opamp("sum", "0", "out")
        sol = solve_dc(c)
        assert sol.voltage("out") == pytest.approx(-2.0)
        assert sol.voltage("sum") == pytest.approx(0.0, abs=1e-12)

    def test_finite_gain_approaches_ideal(self):
        def output(gain):
            c = Circuit()
            c.vsource("in", "0", 1.0)
            c.resistor("in", "sum", 1e3)
            c.resistor("out", "sum", 2e3)
            c.opamp("sum", "0", "out", gain=gain)
            return solve_dc(c).voltage("out")

        errors = [abs(output(g) - (-2.0)) for g in (1e2, 1e4, 1e6)]
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 1e-4

    def test_ideal_follower(self):
        c = Circuit()
        c.vsource("in", "0", 0.7)
        c.opamp("out", "in", "out")
        c.resistor("out", "0", 1e3)
        sol = solve_dc(c)
        assert sol.voltage("out") == pytest.approx(0.7)


class TestSuperposition:
    @given(
        v1=st.floats(min_value=-5, max_value=5),
        v2=st.floats(min_value=-5, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_linear_superposition(self, v1, v2):
        """The DC solution is linear in the sources."""

        def solve(a, b):
            c = Circuit()
            c.vsource("x", "0", a)
            c.vsource("y", "0", b)
            c.resistor("x", "m", 1e3)
            c.resistor("y", "m", 2e3)
            c.resistor("m", "0", 3e3)
            return solve_dc(c).voltage("m")

        combined = solve(v1, v2)
        assert combined == pytest.approx(solve(v1, 0.0) + solve(0.0, v2), abs=1e-9)


class TestFailureModes:
    def test_empty_circuit(self):
        with pytest.raises(CircuitError):
            solve_dc(Circuit())

    def test_floating_node_singular(self):
        c = Circuit()
        c.vsource("a", "0", 1.0)
        c.resistor("a", "0", 1.0)
        c.resistor("b", "c", 1.0)  # floating island
        with pytest.raises(SingularCircuitError):
            solve_dc(c)

    def test_unknown_node_query(self):
        c = Circuit()
        c.vsource("a", "0", 1.0)
        c.resistor("a", "0", 1.0)
        sol = solve_dc(c)
        with pytest.raises(CircuitError):
            sol.voltage("nope")

    def test_unknown_current_query(self):
        c = Circuit()
        c.vsource("a", "0", 1.0)
        c.resistor("a", "0", 1.0)
        sol = solve_dc(c)
        with pytest.raises(CircuitError):
            sol.current("R7")


class TestPower:
    def test_resistor_power(self):
        c = Circuit()
        c.vsource("a", "0", 2.0)
        c.resistor("a", "0", 4.0)
        sol = solve_dc(c)
        assert sol.resistor_power() == pytest.approx(1.0)

    def test_sparse_path_matches_dense(self):
        """A ladder big enough to trigger the sparse branch must agree
        with Ohm's law."""
        import repro.circuits.mna as mna

        n = mna.DENSE_THRESHOLD + 10
        c = Circuit()
        c.vsource("n0", "0", 1.0)
        for i in range(n):
            c.resistor(f"n{i}", f"n{i+1}", 1.0)
        c.resistor(f"n{n}", "0", 1.0)
        sol = solve_dc(c)
        # Voltage divides linearly along the uniform ladder.
        assert sol.voltage(f"n{n}") == pytest.approx(1.0 / (n + 1), rel=1e-6)
