"""Tests for closed-loop offset calibration."""

import math

import numpy as np
import pytest

from repro.amc.calibration import CalibratedOperations
from repro.amc.config import HardwareConfig, OpAmpConfig
from repro.amc.ops import AMCOperations
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import normalize_matrix
from repro.workloads.matrices import random_vector, wishart_matrix


def _setup(offset_sigma=2e-3, noise_sigma=0.0):
    matrix, _ = normalize_matrix(wishart_matrix(8, rng=0))
    array = CrossbarArray.program(matrix, rng=1, pre_normalized=True)
    config = HardwareConfig(
        opamp=OpAmpConfig(
            open_loop_gain=math.inf,
            input_offset_sigma_v=offset_sigma,
            output_noise_sigma_v=noise_sigma,
        ),
    )
    return matrix, array, AMCOperations(config)


class TestPersistentOffsets:
    def test_offsets_fixed_across_operations(self):
        """The shared column's offsets repeat across ops (same hardware)."""
        matrix, array, ops = _setup()
        v = random_vector(8, rng=2) * 0.2
        rng = np.random.default_rng(3)
        first = ops.mvm(array, v, rng=rng).output
        second = ops.mvm(array, v, rng=rng).output
        np.testing.assert_array_equal(first, second)

    def test_fresh_instance_fresh_offsets(self):
        matrix, array, ops_a = _setup()
        _, _, ops_b = _setup()
        v = random_vector(8, rng=4) * 0.2
        a = ops_a.mvm(array, v, rng=np.random.default_rng(5)).output
        b = ops_b.mvm(array, v, rng=np.random.default_rng(6)).output
        assert not np.allclose(a, b)


class TestCalibratedOperations:
    def test_mvm_offset_removed(self):
        matrix, array, ops = _setup(offset_sigma=5e-3)
        calibrated = CalibratedOperations(ops)
        v = random_vector(8, rng=7) * 0.2
        rng = np.random.default_rng(8)
        raw_err = np.max(np.abs(ops.mvm(array, v, rng=rng).error_vector))
        cal = calibrated.mvm(array, v, rng=rng)
        cal_err = np.max(np.abs(cal.output - cal.ideal_output))
        assert cal_err < raw_err * 1e-6  # linear circuit: exact removal

    def test_inv_offset_removed(self):
        matrix, array, ops = _setup(offset_sigma=5e-3)
        calibrated = CalibratedOperations(ops)
        v = random_vector(8, rng=9) * 0.2
        rng = np.random.default_rng(10)
        raw_err = np.max(np.abs(ops.inv(array, v, rng=rng).error_vector))
        cal = calibrated.inv(array, v, rng=rng)
        cal_err = np.max(np.abs(cal.output - cal.ideal_output))
        assert cal_err < raw_err * 1e-6

    def test_correction_cached(self):
        matrix, array, ops = _setup()
        calibrated = CalibratedOperations(ops)
        v = random_vector(8, rng=11) * 0.2
        calibrated.mvm(array, v, rng=12)
        calibrated.mvm(array, v, rng=13)
        assert calibrated.calibrated_entries == 1

    def test_explicit_calibrate(self):
        matrix, array, ops = _setup()
        calibrated = CalibratedOperations(ops)
        calibrated.calibrate(array, rng=14)
        assert calibrated.calibrated_entries == 2  # mvm + inv

    def test_noise_limits_calibration(self):
        """With output noise, calibration is noise-limited; averaging
        the calibration measurement recovers most of the loss."""
        matrix, array, ops = _setup(offset_sigma=5e-3, noise_sigma=1e-3)
        v = random_vector(8, rng=15) * 0.2

        single = CalibratedOperations(ops, averages=1)
        averaged = CalibratedOperations(AMCOperations(ops.config), averages=64)

        rng = np.random.default_rng(16)
        errs_single = []
        errs_avg = []
        for _ in range(30):
            a = single.mvm(array, v, rng=rng)
            b = averaged.mvm(array, v, rng=rng)
            errs_single.append(np.linalg.norm(a.output - a.ideal_output))
            errs_avg.append(np.linalg.norm(b.output - b.ideal_output))
        assert np.mean(errs_avg) < np.mean(errs_single)

    def test_invalid_averages(self):
        _, _, ops = _setup()
        with pytest.raises(ValueError):
            CalibratedOperations(ops, averages=0)

    def test_input_scale_specific_correction(self):
        """INV corrections are per input scale (different loading)."""
        matrix, array, ops = _setup(offset_sigma=5e-3)
        calibrated = CalibratedOperations(ops)
        v = random_vector(8, rng=17) * 0.2
        calibrated.inv(array, v, input_scale=1.0, rng=18)
        calibrated.inv(array, v, input_scale=0.5, rng=19)
        assert calibrated.calibrated_entries == 2
