"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngStream, as_generator, spawn_generators


class TestAsGenerator:
    def test_from_int(self):
        gen = as_generator(42)
        assert isinstance(gen, np.random.Generator)

    def test_from_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_same_seed_same_stream(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        np.testing.assert_array_equal(a, b)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_independent(self):
        g1, g2 = spawn_generators(123, 2)
        assert not np.allclose(g1.random(10), g2.random(10))

    def test_reproducible_from_seed(self):
        a = [g.random() for g in spawn_generators(9, 3)]
        b = [g.random() for g in spawn_generators(9, 3)]
        assert a == b

    def test_from_generator_spawns(self):
        parent = np.random.default_rng(5)
        children = spawn_generators(parent, 2)
        assert len(children) == 2

    def test_from_seed_sequence(self):
        seq = np.random.SeedSequence(11)
        children = spawn_generators(seq, 2)
        assert len(children) == 2


class TestRngStream:
    def test_children_differ(self):
        stream = RngStream(1)
        assert stream.child().random() != stream.child().random()

    def test_replay_bit_exact(self):
        def draw_all(seed):
            stream = RngStream(seed)
            return [stream.child().random() for _ in range(4)]

        assert draw_all(77) == draw_all(77)

    def test_different_seeds_differ(self):
        a = RngStream(1).child().random()
        b = RngStream(2).child().random()
        assert a != b

    def test_spawned_counter(self):
        stream = RngStream(0)
        assert stream.spawned == 0
        stream.child()
        stream.substream()
        assert stream.spawned == 2

    def test_substream_independent(self):
        stream = RngStream(3)
        sub = stream.substream()
        assert sub.child().random() != stream.child().random()

    def test_from_generator(self):
        stream = RngStream(np.random.default_rng(4))
        assert isinstance(stream.child(), np.random.Generator)
