"""Tests for the AMC feasibility advisor."""

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.core.feasibility import (
    Finding,
    assess_feasibility,
    recommended_stage_count,
)
from repro.errors import PartitionError
from repro.workloads.matrices import random_vector, wishart_matrix
from repro.workloads.pde import poisson_1d


class TestFinding:
    def test_severity_validated(self):
        with pytest.raises(ValueError):
            Finding("fatal", "x", "y")


class TestRecommendedStages:
    def test_fits_directly(self):
        assert recommended_stage_count(64, 256) == 1

    def test_one_partition(self):
        assert recommended_stage_count(512, 256) == 1

    def test_two_partitions(self):
        assert recommended_stage_count(1024, 256) == 2

    def test_large(self):
        assert recommended_stage_count(4096, 256) == 4

    def test_invalid_limit(self):
        with pytest.raises(PartitionError):
            recommended_stage_count(64, 0)


class TestAssessFeasibility:
    def test_healthy_spd_system(self):
        matrix = wishart_matrix(16, rng=0)
        report = assess_feasibility(matrix, random_vector(16, rng=1))
        assert report.feasible
        assert report.stability_margin > 0.0
        assert report.predicted_error is not None
        assert report.recommended_stages == 1

    def test_unstable_system_blocked(self):
        matrix = -np.eye(8)
        report = assess_feasibility(matrix)
        assert not report.feasible
        assert report.worst_severity == "blocker"
        assert any("settle" in f.message for f in report.by_topic("stability"))

    def test_singular_leading_block_blocked(self):
        matrix = np.array(
            [
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
                [1.0, 0.0, 1.0, 0.0],
                [0.0, 1.0, 0.0, 1.0],
            ]
        )
        report = assess_feasibility(matrix)
        assert not report.feasible
        assert report.by_topic("partitioning")

    def test_large_system_recommends_stages(self):
        matrix = wishart_matrix(64, rng=2)
        report = assess_feasibility(matrix, max_array_size=16)
        assert report.recommended_stages == 2
        assert any("MultiStageSolver" in f.message for f in report.findings)

    def test_ill_conditioned_pde_warns_on_accuracy(self):
        matrix = poisson_1d(64)
        report = assess_feasibility(matrix, error_budget=0.05)
        accuracy = report.by_topic("accuracy")
        assert accuracy
        assert accuracy[0].severity in ("warning", "blocker")

    def test_no_variation_model_skips_prediction(self):
        matrix = wishart_matrix(8, rng=3)
        report = assess_feasibility(matrix, config=HardwareConfig.ideal())
        assert report.predicted_error is None

    def test_random_probe_when_b_missing(self):
        matrix = wishart_matrix(8, rng=4)
        report = assess_feasibility(matrix)
        assert report.predicted_error is not None

    def test_metrics_populated(self):
        matrix = wishart_matrix(8, rng=5)
        report = assess_feasibility(matrix)
        assert report.metrics["n"] == 8
        assert report.metrics["scale"] > 0.0

    def test_dynamic_range_topic_present(self):
        matrix = wishart_matrix(8, rng=6)
        report = assess_feasibility(matrix)
        assert report.by_topic("dynamic-range")
