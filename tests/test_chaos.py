"""Tests for the deterministic chaos harness (``repro.testing.chaos``).

What makes chaos a proof harness rather than a flake generator:

- fault decisions are **pure** hashes of (plan seed, fault kind, content
  tag) — identical across runs, processes, and bisection re-executions;
- plans round-trip through the ``REPRO_CHAOS`` environment variable, so
  pool workers inherit exactly the driver's plan;
- campaign kills and torn writes are **budgeted** through marker files,
  so a chaos campaign converges to a store bit-identical to a fault-free
  run;
- the driver process never kills itself;
- a torn write leaves exactly the state a mid-write crash would — a
  truncated ``.npz`` with no sidecar — and the store's sidecar-last
  commit protocol treats it as incomplete.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.campaigns import ArtifactStore
from repro.errors import CampaignError, SolverError, ValidationError
from repro.serve import PreparedKey, ServiceConfig, matrix_digest, prepare_entry
from repro.testing import (
    ChaosPlan,
    WorkerKillChaos,
    chaos_entry_transform,
    plan_from_env,
    rhs_tag,
)
from repro.testing.chaos import CHAOS_DRIVER_ENV, CHAOS_ENV
from repro.workloads.matrices import random_vector, wishart_matrix


class TestPlanValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"solve_failure_rate": -0.1},
            {"solve_failure_rate": 1.1},
            {"slow_call_rate": 2.0},
            {"worker_kill_rate": -1.0},
            {"torn_write_rate": 1.5},
            {"slow_call_s": -0.5},
            {"max_kills_per_unit": -1},
        ],
    )
    def test_rejects_bad_rates(self, kwargs):
        with pytest.raises(ValidationError):
            ChaosPlan(**kwargs)


class TestDeterminism:
    def test_decisions_are_pure(self):
        plan = ChaosPlan(seed=7)
        for tag in ("aaaa", "bbbb", "cccc"):
            assert plan.fraction("fail", tag) == plan.fraction("fail", tag)
            assert 0.0 <= plan.fraction("fail", tag) < 1.0
        # Different kinds and seeds decide independently.
        assert plan.fraction("fail", "aaaa") != plan.fraction("kill", "aaaa")
        other = ChaosPlan(seed=8)
        assert plan.fraction("fail", "aaaa") != other.fraction("fail", "aaaa")

    def test_zero_rate_never_fires(self):
        plan = ChaosPlan(seed=0)
        assert not any(
            plan.decides("fail", 0.0, f"tag{i}") for i in range(100)
        )

    def test_rate_one_always_fires(self):
        plan = ChaosPlan(seed=0)
        assert all(plan.decides("fail", 1.0, f"tag{i}") for i in range(100))

    def test_rates_hit_roughly_expected_fraction(self):
        plan = ChaosPlan(seed=3)
        tags = [f"tag{i}" for i in range(2000)]
        hit = sum(plan.decides("fail", 0.25, t) for t in tags)
        assert 0.15 * len(tags) < hit < 0.35 * len(tags)

    def test_rhs_tag_is_content_addressed(self):
        b = random_vector(12, rng=0)
        assert rhs_tag(b) == rhs_tag(b.copy())
        assert rhs_tag(b) != rhs_tag(random_vector(12, rng=1))
        assert rhs_tag(b) != rhs_tag(b.reshape(12, 1) if False else b + 1.0)
        assert len(rhs_tag(b)) == 16


class TestEnvRoundTrip:
    def test_round_trip(self):
        plan = ChaosPlan(
            seed=5,
            solve_failure_rate=0.1,
            slow_call_rate=0.2,
            slow_call_s=0.01,
            worker_kill_rate=0.3,
            max_kills_per_unit=2,
            torn_write_rate=0.4,
            state_dir="/tmp/chaos-state",
        )
        env = plan.chaos_env()
        assert set(env) == {CHAOS_ENV}
        assert plan_from_env(env) == plan

    def test_absent_or_empty_means_no_plan(self):
        assert plan_from_env({}) is None
        assert plan_from_env({CHAOS_ENV: ""}) is None


class TestBudgets:
    def test_markers_bound_fault_count(self, tmp_path):
        plan = ChaosPlan(seed=0, state_dir=str(tmp_path))
        assert plan._consume_budget("kill", "unit-a", 2)
        assert plan._consume_budget("kill", "unit-a", 2)
        assert not plan._consume_budget("kill", "unit-a", 2)
        assert plan._consume_budget("kill", "unit-b", 2)
        assert plan.injected("kill") == 3
        assert plan.injected("torn") == 0

    def test_zero_budget_never_fires(self, tmp_path):
        plan = ChaosPlan(seed=0, state_dir=str(tmp_path))
        assert not plan._consume_budget("kill", "unit-a", 0)
        assert plan.injected("kill") == 0

    def test_budget_requires_state_dir(self, monkeypatch):
        # run_campaign exports the driver pid into os.environ for the
        # life of the process; clear it so the kill hook reaches the
        # budget check instead of the driver guard.
        monkeypatch.delenv(CHAOS_DRIVER_ENV, raising=False)
        plan = ChaosPlan(seed=0, worker_kill_rate=1.0)
        with pytest.raises(CampaignError):
            plan.maybe_kill_worker("unit-a")

    def test_injected_without_state_dir_is_zero(self):
        assert ChaosPlan(seed=0).injected("kill") == 0


class TestKillGuards:
    def test_driver_pid_is_never_killed(self, tmp_path, monkeypatch):
        plan = ChaosPlan(seed=0, worker_kill_rate=1.0, state_dir=str(tmp_path))
        monkeypatch.setenv(CHAOS_DRIVER_ENV, str(os.getpid()))
        # Would SIGKILL this very test process if the guard failed.
        plan.maybe_kill_worker("unit-a")
        assert plan.injected("kill") == 0  # skipped before consuming budget

    def test_zero_rate_skips_before_budget_dir(self):
        # No state_dir needed when the rate never fires.
        ChaosPlan(seed=0).maybe_kill_worker("unit-a")


class TestTornWrites:
    def test_torn_write_leaves_uncommitted_state(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        plan = ChaosPlan(
            seed=0, torn_write_rate=1.0, state_dir=str(tmp_path / "chaos")
        )
        arrays = {"x": np.arange(3.0)}
        with pytest.raises(CampaignError):
            plan.maybe_tear_write(store, "unit-a", arrays)
        # Truncated npz at the final path, no sidecar: not committed.
        assert (store.units_dir / "unit-a.npz").exists()
        assert not store.has("unit-a")
        assert store.completed_keys() == set()
        assert plan.injected("torn") == 1

        # The budget is 1: the retry writes clean, right over the wreck.
        plan.maybe_tear_write(store, "unit-a", arrays)  # no raise
        store.write_unit("unit-a", arrays, {"ok": True})
        assert store.has("unit-a")
        assert plan.injected("torn") == 1


class TestServingSeam:
    def _entry(self, matrix):
        config = ServiceConfig()
        key = PreparedKey(
            matrix_digest(matrix),
            config.default_hardware.cache_key(),
            config.default_solver,
            config.default_prep_seed,
        )
        return prepare_entry(key, matrix, config.default_hardware)

    def test_wrapper_preserves_clean_solves_bitwise(self):
        matrix = wishart_matrix(10, rng=0)
        b = random_vector(10, rng=1)
        plan = ChaosPlan(seed=0, solve_failure_rate=0.0)
        entry = self._entry(matrix)
        wrapped = chaos_entry_transform(plan)(entry)
        clean = entry.prepared.solve(b, np.random.default_rng(5))
        chaotic = wrapped.prepared.solve(b, np.random.default_rng(5))
        assert np.array_equal(clean.x, chaotic.x)
        assert clean.relative_error == chaotic.relative_error
        # Entry identity (key, coalescible flag) is untouched.
        assert wrapped.key == entry.key
        assert wrapped.coalescible == entry.coalescible

    def test_fail_decision_keys_on_rhs_content(self):
        matrix = wishart_matrix(10, rng=0)
        plan = ChaosPlan(seed=0, solve_failure_rate=0.5)
        wrapped = chaos_entry_transform(plan)(self._entry(matrix))
        bs = [random_vector(10, rng=i) for i in range(30)]
        doomed = [
            b for b in bs
            if plan.decides("fail", plan.solve_failure_rate, rhs_tag(b))
        ]
        assert doomed and len(doomed) < len(bs)
        for b in bs:
            should_fail = plan.decides(
                "fail", plan.solve_failure_rate, rhs_tag(b)
            )
            if should_fail:
                with pytest.raises(SolverError):
                    wrapped.prepared.solve(b, np.random.default_rng(0))
            else:
                wrapped.prepared.solve(b, np.random.default_rng(0))

    def test_solve_many_raises_on_any_poisoned_rhs(self):
        matrix = wishart_matrix(10, rng=0)
        plan = ChaosPlan(seed=0, solve_failure_rate=1.0)
        wrapped = chaos_entry_transform(plan)(self._entry(matrix))
        with pytest.raises(SolverError):
            wrapped.prepared.solve_many(
                [random_vector(10, rng=1)], np.random.default_rng(0)
            )

    def test_kill_fires_once_per_tag_per_wrapper(self):
        matrix = wishart_matrix(10, rng=0)
        b = random_vector(10, rng=2)
        plan = ChaosPlan(seed=0, worker_kill_rate=1.0)
        wrapped = chaos_entry_transform(plan)(self._entry(matrix))
        with pytest.raises(WorkerKillChaos):
            wrapped.prepared.solve(b, np.random.default_rng(0))
        # Second attempt on the same wrapper runs clean — a restarted
        # shard must not be killed forever.
        wrapped.prepared.solve(b, np.random.default_rng(0))

    def test_kill_is_base_exception(self):
        assert issubclass(WorkerKillChaos, BaseException)
        assert not issubclass(WorkerKillChaos, Exception)

    def test_slow_calls_delay_without_failing(self):
        matrix = wishart_matrix(10, rng=0)
        b = random_vector(10, rng=3)
        plan = ChaosPlan(seed=0, slow_call_rate=1.0, slow_call_s=0.02)
        entry = self._entry(matrix)
        wrapped = chaos_entry_transform(plan)(entry)
        import time as _time

        t0 = _time.perf_counter()
        chaotic = wrapped.prepared.solve(b, np.random.default_rng(5))
        elapsed = _time.perf_counter() - t0
        assert elapsed >= 0.02
        clean = entry.prepared.solve(b, np.random.default_rng(5))
        assert np.array_equal(clean.x, chaotic.x)
