"""Equivalence tests for the batched/cached perf engine.

Every optimized path in the engine keeps its pre-optimization reference
implementation alive; these tests pin the new paths to those references:

- vectorized vs. cell-by-cell ladder assembly (exact matrix equality);
- Schur / multi-RHS-LU exact extraction vs. the column-loop reference;
- the LRU :class:`ParasiticExtractor` vs. fresh extraction (Hypothesis);
- ``solve_dc_many`` / ``AssembledMNA`` vs. repeated ``solve_dc``;
- batched variation draws vs. sequential draws from the same generator
  (bit-exact stream splitting);
- ``run_trials_batched`` vs. ``run_trials`` (1e-10 on every record);
- ``PreparedBlockAMC.solve_many`` vs. a sequential ``solve`` loop.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import run_trials, run_trials_batched
from repro.circuits.generators import build_inv_circuit, build_mvm_circuit
from repro.circuits.mna import assemble_mna, solve_dc, solve_dc_many
from repro.circuits.netlist import Circuit
from repro.core.batched import is_batchable_config, make_batched_runner
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.crossbar.parasitics import (
    ParasiticExtractor,
    _ladder_system,
    _ladder_system_loop,
    exact_effective_matrix,
)
from repro.devices.variations import (
    GaussianVariation,
    LognormalVariation,
    NoVariation,
    RelativeGaussianVariation,
)
from repro.errors import CircuitError
from repro.workloads.matrices import random_vector, wishart_matrix

G0 = 100e-6


def _random_g(shape, seed, zero_fraction=0.3):
    rng = np.random.default_rng(seed)
    g = rng.uniform(0.0, 1e-4, size=shape)
    g[rng.random(shape) < zero_fraction] = 0.0
    return g


class TestLadderAssembly:
    @pytest.mark.parametrize("shape", [(1, 1), (2, 2), (3, 5), (8, 8), (16, 4)])
    def test_vectorized_assembly_matches_loop_exactly(self, shape):
        g = _random_g(shape, seed=1)
        vec = _ladder_system(g, 1.0)[0].toarray()
        loop = _ladder_system_loop(g, 1.0)[0].toarray()
        assert np.array_equal(vec, loop)

    @given(
        rows=st.integers(1, 7),
        cols=st.integers(1, 7),
        r_wire=st.sampled_from([0.25, 1.0, 3.0]),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_assembly_equality_property(self, rows, cols, r_wire, seed):
        g = _random_g((rows, cols), seed=seed)
        vec = _ladder_system(g, r_wire)[0].toarray()
        loop = _ladder_system_loop(g, r_wire)[0].toarray()
        assert np.array_equal(vec, loop)


class TestExactMethods:
    @pytest.mark.parametrize("shape", [(1, 3), (5, 1), (2, 2), (8, 8), (12, 7), (7, 12)])
    @pytest.mark.parametrize("method", ["auto", "schur", "lu"])
    def test_methods_match_loop_reference(self, shape, method):
        g = _random_g(shape, seed=3)
        reference = exact_effective_matrix(g, 1.0, method="loop")
        fast = exact_effective_matrix(g, 1.0, method=method)
        assert np.max(np.abs(fast - reference)) < 1e-10

    def test_r_wire_variants(self):
        g = _random_g((9, 6), seed=4)
        for r_wire in (0.25, 1.0, 17.0):
            reference = exact_effective_matrix(g, r_wire, method="loop")
            fast = exact_effective_matrix(g, r_wire)
            assert np.max(np.abs(fast - reference)) < 1e-10

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            exact_effective_matrix(np.ones((2, 2)), 1.0, method="magic")

    def test_zero_wire_returns_copy(self):
        g = _random_g((3, 3), seed=5)
        out = exact_effective_matrix(g, 0.0)
        assert np.array_equal(out, g)
        assert out is not g


class TestParasiticExtractor:
    def test_cache_hit_returns_same_values(self):
        extractor = ParasiticExtractor()
        g = _random_g((6, 6), seed=6)
        first = extractor.extract(g, 1.0)
        second = extractor.extract(g, 1.0)
        assert np.array_equal(first, second)
        assert extractor.hits == 1 and extractor.misses == 1

    def test_returns_copies(self):
        extractor = ParasiticExtractor()
        g = _random_g((4, 4), seed=7)
        first = extractor.extract(g, 1.0)
        first[0, 0] = 1e9
        assert extractor.extract(g, 1.0)[0, 0] != 1e9

    def test_lru_eviction(self):
        extractor = ParasiticExtractor(maxsize=2)
        gs = [_random_g((3, 3), seed=s) for s in range(4)]
        for g in gs:
            extractor.extract(g, 1.0)
        extractor.extract(gs[-1], 1.0)
        assert extractor.hits == 1
        extractor.extract(gs[0], 1.0)  # evicted: recomputed
        assert extractor.misses == 5

    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        r_wire=st.sampled_from([0.5, 1.0, 2.0]),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_cached_matches_fresh_extraction(self, rows, cols, r_wire, seed):
        extractor = ParasiticExtractor()
        g = _random_g((rows, cols), seed=seed)
        cached = extractor.extract(g, r_wire)
        cached_again = extractor.extract(g, r_wire)
        fresh = exact_effective_matrix(g, r_wire)
        assert np.array_equal(cached, cached_again)
        assert np.array_equal(cached, fresh)


class TestSolveDcMany:
    def _divider(self):
        c = Circuit("divider")
        c.vsource("in", "0", 2.0, "Vs")
        c.resistor("in", "mid", 1e3, "R1")
        c.resistor("mid", "0", 1e3, "R2")
        return c

    def test_matches_repeated_solve_dc(self):
        c = self._divider()
        values = [0.5, 1.0, 2.0, -3.0]
        many = solve_dc_many(c, [{"Vs": v} for v in values])
        for v, solution in zip(values, many):
            rebuilt = Circuit("d")
            rebuilt.vsource("in", "0", v, "Vs")
            rebuilt.resistor("in", "mid", 1e3, "R1")
            rebuilt.resistor("mid", "0", 1e3, "R2")
            expected = solve_dc(rebuilt)
            assert solution.voltage("mid") == pytest.approx(expected.voltage("mid"), abs=1e-14)

    def test_empty_batch(self):
        assert solve_dc_many(self._divider(), []) == []

    def test_unknown_source_rejected(self):
        with pytest.raises(CircuitError, match="independent source"):
            solve_dc_many(self._divider(), [{"nope": 1.0}])

    def test_current_source_override(self):
        c = Circuit("isrc")
        c.isource("n", "0", 1e-3, "I1")
        c.resistor("n", "0", 1e3, "R1")
        base, doubled = solve_dc_many(c, [{}, {"I1": 2e-3}])
        reference = solve_dc(c).voltage("n")
        assert base.voltage("n") == pytest.approx(reference)
        assert doubled.voltage("n") == pytest.approx(2.0 * reference)

    def test_mvm_circuit_source_updates(self):
        g_pos = _random_g((3, 3), seed=8, zero_fraction=0.0) + 1e-5
        g_neg = _random_g((3, 3), seed=9, zero_fraction=0.0) + 1e-5
        v1 = np.array([0.1, -0.2, 0.3])
        v2 = np.array([-0.4, 0.5, 0.6])
        circuit, outputs = build_mvm_circuit(g_pos, g_neg, v1, G0)
        assembled = assemble_mna(circuit)
        first = assembled.solve().voltages(outputs)
        overrides = {}
        for j, v in enumerate(v2):
            overrides[f"Vp_{j}"] = float(v)
            overrides[f"Vn_{j}"] = float(-v)
        second = assembled.solve(overrides).voltages(outputs)
        direct = solve_dc(build_mvm_circuit(g_pos, g_neg, v2, G0)[0]).voltages(
            build_mvm_circuit(g_pos, g_neg, v2, G0)[1]
        )
        assert np.allclose(first, -(g_pos - g_neg) @ v1 / G0, atol=1e-9)
        assert np.max(np.abs(second - direct)) < 1e-12

    def test_inv_circuit_source_updates(self):
        rng = np.random.default_rng(10)
        matrix = np.eye(3) * 3e-5 + rng.uniform(0, 1e-5, (3, 3))
        g_pos = np.clip(matrix, 0, None)
        g_neg = np.clip(-matrix, 0, None)
        v1 = np.array([0.2, 0.1, -0.1])
        v2 = np.array([-0.3, 0.4, 0.2])
        circuit, outputs = build_inv_circuit(g_pos, g_neg, v1, G0)
        assembled = assemble_mna(circuit)
        assembled.solve()
        updated = assembled.solve(
            {f"Vin_{i}": float(v) for i, v in enumerate(v2)}
        ).voltages(outputs)
        direct_c, direct_o = build_inv_circuit(g_pos, g_neg, v2, G0)
        direct = solve_dc(direct_c).voltages(direct_o)
        assert np.max(np.abs(updated - direct)) < 1e-12


class TestDCSolutionVectorized:
    def test_voltages_and_power(self):
        c = Circuit("net")
        c.vsource("a", "0", 1.0, "V1")
        c.resistor("a", "b", 1e3, "R1")
        c.resistor("b", "0", 3e3, "R2")
        sol = solve_dc(c)
        v = sol.voltages(["a", "b", "0", "gnd"])
        assert v == pytest.approx([1.0, 0.75, 0.0, 0.0])
        manual = sum(
            (sol.voltage(e.a) - sol.voltage(e.b)) ** 2 / e.resistance
            for e in c.elements
            if e.name.startswith("R")
        )
        assert sol.resistor_power() == pytest.approx(manual)

    def test_unknown_node_raises(self):
        c = Circuit("net")
        c.vsource("a", "0", 1.0, "V1")
        c.resistor("a", "0", 1e3, "R1")
        with pytest.raises(CircuitError, match="unknown node"):
            solve_dc(c).voltages(["a", "bogus"])


class TestBatchedVariationDraws:
    @pytest.mark.parametrize(
        "model",
        [
            NoVariation(),
            GaussianVariation(5e-6),
            RelativeGaussianVariation(0.05),
            LognormalVariation(0.05),
        ],
    )
    def test_batch_matches_sequential_stream(self, model):
        target = np.abs(_random_g((5, 4), seed=11))
        batched = model.apply_batch(target, 6, np.random.default_rng(42))
        rng = np.random.default_rng(42)
        sequential = np.stack([model.apply(target, rng) for _ in range(6)])
        assert np.array_equal(batched, sequential)

    def test_zero_trials(self):
        out = GaussianVariation(1e-6).apply_batch(np.ones((2, 2)), 0, 0)
        assert out.shape == (0, 2, 2)

    def test_generic_fallback_draws_independent_trials(self):
        class Doubler(LognormalVariation):
            """Subclass without its own apply_batch: uses the generic loop."""

            def apply_batch(self, target, trials, rng=None):
                return super(LognormalVariation, self).apply_batch(target, trials, rng)

        target = np.full((3, 3), 1e-5)
        batch = Doubler(0.1).apply_batch(target, 4, rng=42)
        # An int seed must still produce *independent* trials (the rng is
        # coerced once, not re-seeded per apply call).
        assert not np.array_equal(batch[0], batch[1])

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            NoVariation().apply_batch(np.ones((2, 2)), -1)


class TestBatchedSweep:
    @pytest.mark.parametrize(
        "config",
        [
            HardwareConfig.paper_variation(),
            HardwareConfig.paper_interconnect(),
            HardwareConfig.paper_ideal_mapping(),
        ],
        ids=["variation", "interconnect", "ideal_mapping"],
    )
    def test_records_match_run_trials(self, config):
        sizes, trials = (8, 13, 16), 3
        seq = run_trials(
            {
                "orig": lambda: OriginalAMCSolver(config),
                "block": lambda: BlockAMCSolver(config),
            },
            lambda n, rng: wishart_matrix(n, rng),
            sizes,
            trials,
            seed=70,
        )
        bat = run_trials_batched(
            {
                "orig": OriginalAMCSolver(config),
                "block": BlockAMCSolver(config),
            },
            lambda n, rng: wishart_matrix(n, rng),
            sizes,
            trials,
            seed=70,
        )
        seq_by_key = {(r.solver, r.size, r.trial): r for r in seq}
        bat_by_key = {(r.solver, r.size, r.trial): r for r in bat}
        assert set(seq_by_key) == set(bat_by_key)
        for key, s in seq_by_key.items():
            b = bat_by_key[key]
            assert abs(s.relative_error - b.relative_error) < 1e-10, key
            assert s.saturated == b.saturated, key
            assert abs(s.analog_time_s - b.analog_time_s) <= 1e-10 * max(
                1.0, abs(s.analog_time_s)
            ), key

    def test_record_order_matches_run_trials(self):
        config = HardwareConfig.paper_variation()
        seq = run_trials(
            {
                "orig": lambda: OriginalAMCSolver(config),
                "block": lambda: BlockAMCSolver(config),
            },
            lambda n, rng: wishart_matrix(n, rng),
            (8, 16),
            3,
            seed=1,
        )
        bat = run_trials_batched(
            {
                "orig": OriginalAMCSolver(config),
                "block": BlockAMCSolver(config),
            },
            lambda n, rng: wishart_matrix(n, rng),
            (8, 16),
            3,
            seed=1,
        )
        assert [(r.solver, r.size, r.trial) for r in seq] == [
            (r.solver, r.size, r.trial) for r in bat
        ]

    def test_unbatchable_solver_falls_back(self):
        config = HardwareConfig.paper_variation()
        assert make_batched_runner(MultiStageSolver(config, stages=2)) is None
        seq = run_trials(
            {"ms": lambda: MultiStageSolver(config, stages=2)},
            lambda n, rng: wishart_matrix(n, rng),
            (8,),
            2,
            seed=70,
        )
        bat = run_trials_batched(
            {"ms": MultiStageSolver(config, stages=2)},
            lambda n, rng: wishart_matrix(n, rng),
            (8,),
            2,
            seed=70,
        )
        for s, b in zip(seq, bat):
            assert s.relative_error == pytest.approx(b.relative_error, abs=1e-12)

    def test_unbatchable_configs_detected(self):
        assert is_batchable_config(HardwareConfig.paper_variation())
        # Exact parasitic extraction is batchable since the batched Schur
        # engine (exact_effective_matrix_batch) landed.
        assert is_batchable_config(HardwareConfig.paper_interconnect(fidelity="exact"))
        assert not is_batchable_config(
            HardwareConfig.paper_variation().with_(use_mna=True)
        )
        base = HardwareConfig.paper_variation()
        write_verify = replace(base.programming, use_write_verify=True)
        assert not is_batchable_config(base.with_(programming=write_verify))
        quantized = replace(base.programming, quantize=True)
        assert not is_batchable_config(base.with_(programming=quantized))


class TestSolveMany:
    @pytest.mark.parametrize(
        "config",
        [HardwareConfig.paper_variation(), HardwareConfig.ideal()],
        ids=["variation", "ideal"],
    )
    def test_matches_sequential_loop(self, config):
        matrix = wishart_matrix(17, rng=0)
        rhs = [random_vector(17, rng=i + 1) for i in range(5)]
        sequential_prep = BlockAMCSolver(config).prepare(matrix, rng=5)
        gen = np.random.default_rng(9)
        sequential = [sequential_prep.solve(b, gen) for b in rhs]
        batched_prep = BlockAMCSolver(config).prepare(matrix, rng=5)
        batched = batched_prep.solve_many(rhs, np.random.default_rng(9))
        for s, b in zip(sequential, batched):
            assert np.max(np.abs(s.x - b.x)) < 1e-10
            assert s.saturated == b.saturated
            assert s.analog_time_s == pytest.approx(b.analog_time_s, rel=1e-12)
            assert s.metadata["input_scale"] == pytest.approx(
                b.metadata["input_scale"], rel=1e-12
            )
            for op_s, op_b in zip(s.operations, b.operations):
                assert op_s.label == op_b.label and op_s.kind == op_b.kind
                assert np.max(np.abs(op_s.output - op_b.output)) < 1e-10
                assert np.max(np.abs(op_s.ideal_output - op_b.ideal_output)) < 1e-10

    def test_empty_batch_rejected(self):
        prep = BlockAMCSolver(HardwareConfig.ideal()).prepare(wishart_matrix(8, rng=0), rng=1)
        with pytest.raises(Exception, match="at least one"):
            prep.solve_many([])

    def test_multistage_solve_many_reuses_tree(self):
        config = HardwareConfig.paper_variation()
        prep = MultiStageSolver(config, stages=2).prepare(wishart_matrix(16, rng=3), rng=4)
        results = prep.solve_many(
            [random_vector(16, rng=7), random_vector(16, rng=8)], rng=9
        )
        assert len(results) == 2
        for result in results:
            assert result.relative_error < 1.0
