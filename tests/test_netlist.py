"""Tests for the netlist container and element builders."""

import pytest

from repro.circuits.elements import (
    CurrentSource,
    IdealOpAmp,
    Resistor,
    VCVS,
    VoltageSource,
)
from repro.circuits.mna import solve_dc
from repro.circuits.netlist import GROUND_NAMES, Circuit, canonical_node
from repro.errors import CircuitError


class TestCanonicalNode:
    @pytest.mark.parametrize("alias", ["0", "gnd", "GND"])
    def test_ground_aliases(self, alias):
        assert canonical_node(alias) == "0"

    def test_regular_node(self):
        assert canonical_node("n1") == "n1"


class TestElementValidation:
    def test_resistor_requires_positive_resistance(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", 0.0)

    def test_resistor_conductance(self):
        assert Resistor("R1", "a", "b", 2.0).conductance == 0.5

    def test_empty_node_name_rejected(self):
        with pytest.raises(CircuitError):
            VoltageSource("V1", "", "0", 1.0)


class TestCircuitBuilders:
    def test_auto_names_unique(self):
        c = Circuit()
        r1 = c.resistor("a", "0", 1.0)
        r2 = c.resistor("b", "0", 1.0)
        assert r1.name != r2.name

    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.resistor("a", "0", 1.0, name="R")
        with pytest.raises(CircuitError, match="duplicate"):
            c.resistor("b", "0", 1.0, name="R")

    def test_duplicate_name_via_add_rejected(self):
        c = Circuit()
        c.add(Resistor("R", "a", "0", 1.0))
        with pytest.raises(CircuitError, match="duplicate"):
            c.add(VoltageSource("R", "a", "0", 1.0))

    def test_conductor_converts(self):
        c = Circuit()
        r = c.conductor("a", "0", 0.25)
        assert r.resistance == 4.0

    def test_conductor_rejects_nonpositive(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.conductor("a", "0", 0.0)

    def test_nodes_sorted_excluding_ground(self):
        c = Circuit()
        c.resistor("b", "gnd", 1.0)
        c.resistor("a", "b", 1.0)
        assert c.nodes() == ["a", "b"]

    def test_opamp_ideal_type(self):
        c = Circuit()
        e = c.opamp("inv", "0", "out")
        assert isinstance(e, IdealOpAmp)

    def test_opamp_finite_gain_is_vcvs(self):
        c = Circuit()
        e = c.opamp("inv", "0", "out", gain=1e5)
        assert isinstance(e, VCVS)
        assert e.gain == 1e5

    def test_len_counts_elements(self):
        c = Circuit()
        c.resistor("a", "0", 1.0)
        c.vsource("a", "0", 1.0)
        assert len(c) == 2

    def test_vcvs_nodes_collected(self):
        c = Circuit()
        c.vcvs("o", "0", "c1", "c2", 2.0)
        assert set(c.nodes()) == {"o", "c1", "c2"}


class TestBulkBuilders:
    def test_resistors_match_scalar_path(self):
        a, b = Circuit(), Circuit()
        a.resistor("x", "0", 1.0, "R1")
        a.resistor("x", "y", 2.0, "R2")
        b.resistors(["x", "x"], ["gnd", "y"], [1.0, 2.0], ["R1", "R2"])
        assert a.elements == b.elements

    def test_conductors_match_scalar_path(self):
        a, b = Circuit(), Circuit()
        a.conductor("x", "0", 0.5, "G1")
        b.conductors(["x"], ["0"], [0.5], ["G1"])
        assert a.elements == b.elements

    def test_vsources_match_scalar_path(self):
        a, b = Circuit(), Circuit()
        a.vsource("p", "0", 1.5, "V1")
        b.vsources(["p"], ["GND"], [1.5], ["V1"])
        assert a.elements == b.elements

    def test_bulk_duplicate_names_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError, match="duplicate"):
            c.resistors(["a", "b"], ["0", "0"], [1.0, 1.0], ["R1", "R1"])

    def test_bulk_clash_with_existing_rejected(self):
        c = Circuit()
        c.resistor("a", "0", 1.0, "R1")
        with pytest.raises(CircuitError, match="duplicate"):
            c.resistors(["b"], ["0"], [1.0], ["R1"])

    def test_bulk_nonpositive_resistance_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.resistors(["a"], ["0"], [0.0], ["R1"])

    def test_bulk_nonpositive_conductance_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.conductors(["a"], ["0"], [-1.0], ["G1"])

    def test_bulk_length_mismatch_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.resistors(["a", "b"], ["0"], [1.0], ["R1"])

    def test_bulk_bad_node_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.resistors([""], ["0"], [1.0], ["R1"])

    def test_bulk_elements_hash_and_compare_like_scalar(self):
        c = Circuit()
        (element,) = c.resistors(["a", ], ["0"], [2.0], ["R9"])
        twin = Resistor("R9", "a", "0", 2.0)
        assert element == twin
        assert hash(element) == hash(twin)
        assert element.conductance == 0.5


class TestFailedBuilderLeavesCircuitUntouched:
    """Regression: a builder whose element fails validation must not
    register the name or advance the auto-name counter (the old
    ``_register`` did both before constructing the element, so a failed
    call poisoned the name for any retry)."""

    FAILING_THEN_VALID = {
        "resistor": (
            lambda c, name: c.resistor("a", "0", 0.0, name=name),
            lambda c, name: c.resistor("a", "0", 1.0, name=name),
        ),
        "capacitor": (
            lambda c, name: c.capacitor("a", "0", 0.0, name=name),
            lambda c, name: c.capacitor("a", "0", 1e-12, name=name),
        ),
        "inductor": (
            lambda c, name: c.inductor("a", "0", 0.0, name=name),
            lambda c, name: c.inductor("a", "0", 1e-9, name=name),
        ),
        "conductor": (
            lambda c, name: c.conductor("a", "0", 0.0, name=name),
            lambda c, name: c.conductor("a", "0", 2.0, name=name),
        ),
        "vsource": (
            lambda c, name: c.vsource("", "0", 1.0, name=name),
            lambda c, name: c.vsource("a", "0", 1.0, name=name),
        ),
        "isource": (
            lambda c, name: c.isource("", "0", 1.0, name=name),
            lambda c, name: c.isource("a", "0", 1.0, name=name),
        ),
        "vcvs": (
            lambda c, name: c.vcvs("", "0", "x", "y", 2.0, name=name),
            lambda c, name: c.vcvs("o", "0", "x", "y", 2.0, name=name),
        ),
        "opamp_ideal": (
            lambda c, name: c.opamp("", "0", "out", name=name),
            lambda c, name: c.opamp("inv", "0", "out", name=name),
        ),
        "opamp_finite_gain": (
            lambda c, name: c.opamp("", "0", "out", gain=1e5, name=name),
            lambda c, name: c.opamp("inv", "0", "out", gain=1e5, name=name),
        ),
    }

    @pytest.mark.parametrize("kind", sorted(FAILING_THEN_VALID))
    def test_retry_with_same_name_succeeds(self, kind):
        failing, valid = self.FAILING_THEN_VALID[kind]
        c = Circuit()
        with pytest.raises(CircuitError):
            failing(c, "X1")
        assert len(c) == 0
        element = valid(c, "X1")
        assert element.name == "X1"
        assert len(c) == 1

    @pytest.mark.parametrize("kind", sorted(FAILING_THEN_VALID))
    def test_auto_name_counter_does_not_advance_on_failure(self, kind):
        failing, valid = self.FAILING_THEN_VALID[kind]
        c = Circuit()
        with pytest.raises(CircuitError):
            failing(c, None)
        first = valid(c, None)
        d = Circuit()
        twin = valid(d, None)
        assert first.name == twin.name
        assert len(c) == 1


class TestGroundAliasEquivalence:
    """Regression: elements handed to ``add()`` with ``"gnd"``/``"GND"``
    terminals must solve identically to the same circuit spelled with
    ``"0"`` (the old ``add()`` kept the alias verbatim, so MNA assembly
    treated ground as a floating extra node)."""

    @staticmethod
    def _divider(ground: str) -> Circuit:
        c = Circuit()
        c.add(VoltageSource("V1", "in", ground, 2.0))
        c.add(Resistor("R1", "in", "mid", 1.0))
        c.add(Resistor("R2", "mid", ground, 1.0))
        c.add(CurrentSource("I1", ground, "mid", 0.5))
        return c

    @pytest.mark.parametrize("alias", GROUND_NAMES)
    def test_add_aliases_solve_like_zero(self, alias):
        reference = solve_dc(self._divider("0"))
        aliased = solve_dc(self._divider(alias))
        for node in ("in", "mid"):
            assert aliased.voltage(node) == reference.voltage(node)
        assert aliased.current("V1") == reference.current("V1")

    @pytest.mark.parametrize("alias", ("gnd", "GND"))
    def test_add_canonicalizes_vcvs_and_opamp(self, alias):
        c = Circuit()
        c.add(VCVS("E1", "o", alias, "x", alias, 2.0))
        c.add(IdealOpAmp("U1", "inv", alias, "out"))
        ground_nodes = {alias} & set(c.nodes())
        assert not ground_nodes
        elements = {e.name: e for e in c.elements}
        assert elements["E1"].out_minus == "0"
        assert elements["E1"].ctrl_minus == "0"
        assert elements["U1"].noninverting == "0"
