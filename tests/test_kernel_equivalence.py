"""Property-based equivalence suite for the consolidated analog kernel.

``repro.core.common`` is the single implementation of the analog solve
physics; three call-path shapes consume it:

- **scalar** — ``AMCOperations`` / ``PreparedBlockAMC.solve`` /
  ``PreparedOriginalAMC.solve`` (one vector at a time);
- **trial-batched** — ``repro.core.batched`` (stacked ``(trials, n, n)``
  Monte-Carlo tensors);
- **multi-RHS** — ``PreparedBlockAMC.solve_many`` (one programmed macro,
  row-stacked right-hand sides).

This suite *proves* the consolidation: for every configuration the
batched engines support, the three shapes must produce **bit-identical**
payloads — not merely close. Assertions here use ``==`` and
``np.array_equal``, never tolerances. A reintroduced per-path copy of
the physics (a second ranging margin, a ``@`` where the kernel uses
``einsum``, an ``nrhs > 1`` LAPACK call) breaks these tests on the first
affected sample; the drift-guard tests at the bottom demonstrate that
detection explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.batched as batched_module
from repro.amc.config import (
    ConverterConfig,
    HardwareConfig,
    OpAmpConfig,
    SampleHoldConfig,
)
from repro.analysis.accuracy import run_trials, run_trials_batched
from repro.circuits.columnar import ColumnarCircuit
from repro.circuits.generators import build_inv_circuit, build_mvm_circuit
from repro.circuits.mna import assemble_mna, solve_dc
from repro.circuits.netlist import Circuit
from repro.core import digital
from repro.core.batched import make_batched_runner
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.core.preconditioned import (
    amc_block_preconditioner,
    amc_preconditioner,
    fgmres,
    fgmres_many,
)
from repro.core.common import (
    DEFAULT_INPUT_FRACTION,
    MAX_RANGING_ATTEMPTS,
    QUANTIZATION_MARGIN,
    RANGING_HEADROOM,
    FactoredSystem,
    auto_range,
    auto_range_many,
    contract,
    draw_offsets,
    draw_offsets_batch,
    input_voltage_scale,
    input_voltage_scale_many,
    inv_raw,
    inv_solve,
    mvm_raw,
    ranging_rescale,
    saturate,
    snh_cascade,
    solve_columns,
    solve_slices,
)
from repro.core.original import OriginalAMCSolver
from repro.crossbar import parasitics as parasitics_module
from repro.crossbar.array import ProgrammingConfig
from repro.crossbar.parasitics import (
    exact_effective_matrix,
    exact_effective_matrix_batch,
)
from repro.devices.variations import (
    GaussianVariation,
    LognormalVariation,
    NoVariation,
    RelativeGaussianVariation,
)
from repro.errors import ConvergenceError, SolverError, ValidationError
from repro.workloads.matrices import (
    diagonally_dominant_matrix,
    random_vector,
    wishart_matrix,
)

# ----------------------------------------------------------------------
# workload generators: sizes, condition numbers, rhs counts
# ----------------------------------------------------------------------


def graded_matrix(n: int, decay: float, rng) -> np.ndarray:
    """SPD matrix with eigenvalues ``decay ** k`` — condition knob.

    ``decay`` close to 1 is benign; smaller values grow the inverse's
    norm until INV outputs clip converter full scale and the
    gain-ranging rerun path executes.
    """
    rng = np.random.default_rng(rng)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = decay ** np.arange(n)
    return (q * s) @ q.T


MATRIX_FAMILIES = {
    "wishart": lambda n, rng: wishart_matrix(n, rng),
    "dominant": lambda n, rng: diagonally_dominant_matrix(n, rng),
    # Ill-conditioned enough that gain ranging reruns on most draws.
    "graded": lambda n, rng: graded_matrix(n, 0.8, rng),
}


def _config_variants():
    """HardwareConfig grid: noise on/off, quantization, saturation."""
    return {
        "ideal": HardwareConfig.ideal(),
        "ideal_mapping": HardwareConfig.paper_ideal_mapping(),
        "variation": HardwareConfig.paper_variation(),
        "interconnect": HardwareConfig.paper_interconnect(),
        # Exact parasitic extraction routes through the batched Schur
        # engine (exact_effective_matrix_batch), bit-identical per trial.
        "exact_parasitics": HardwareConfig.paper_interconnect(fidelity="exact"),
        "abs_gaussian": HardwareConfig.paper_variation().with_(
            programming=ProgrammingConfig(variation=GaussianVariation(2e-6))
        ),
        "lognormal": HardwareConfig.paper_variation().with_(
            programming=ProgrammingConfig(variation=LognormalVariation(0.05))
        ),
        "coarse_quant": HardwareConfig.paper_variation().with_(
            converters=ConverterConfig(dac_bits=6, adc_bits=6)
        ),
        "saturating": HardwareConfig.paper_variation().with_(
            opamp=OpAmpConfig(v_sat=0.7)
        ),
        "snh_gain_error": HardwareConfig.paper_variation().with_(
            sample_hold=SampleHoldConfig(gain_error=0.01)
        ),
        # Per-operation fresh-noise configurations: the batched engine
        # draws output and S&H noise per trial, per op, per ranging
        # attempt in exact scalar stream order (PR 4 coverage).
        "output_noise": HardwareConfig.paper_variation().with_(
            opamp=OpAmpConfig(output_noise_sigma_v=5e-4)
        ),
        "snh_noise": HardwareConfig.paper_variation().with_(
            sample_hold=SampleHoldConfig(gain_error=0.005, noise_sigma_v=2e-4)
        ),
        "noisy_saturating": HardwareConfig.paper_interconnect().with_(
            opamp=OpAmpConfig(output_noise_sigma_v=5e-4, v_sat=0.8),
            sample_hold=SampleHoldConfig(gain_error=0.005, noise_sigma_v=2e-4),
        ),
    }


CONFIGS = _config_variants()


def _records_exactly_equal(seq, bat):
    assert [(r.solver, r.size, r.trial) for r in seq] == [
        (r.solver, r.size, r.trial) for r in bat
    ]
    for s, b in zip(seq, bat):
        key = (s.solver, s.size, s.trial)
        assert s.relative_error == b.relative_error, key
        assert s.saturated == b.saturated, key
        assert s.analog_time_s == b.analog_time_s, key


def _results_exactly_equal(s, b):
    """Full SolveResult payload comparison, bit-for-bit."""
    assert np.array_equal(s.x, b.x)
    assert np.array_equal(s.reference, b.reference)
    assert s.relative_error == b.relative_error
    assert s.saturated == b.saturated
    assert s.analog_time_s == b.analog_time_s
    assert s.metadata["input_scale"] == b.metadata["input_scale"]
    assert len(s.operations) == len(b.operations)
    for op_s, op_b in zip(s.operations, b.operations):
        assert op_s.label == op_b.label and op_s.kind == op_b.kind
        assert np.array_equal(op_s.output, op_b.output), op_s.label
        assert np.array_equal(op_s.ideal_output, op_b.ideal_output), op_s.label
        assert op_s.settling_time_s == op_b.settling_time_s
        assert op_s.saturated == op_b.saturated
    ref_s = s.metadata["reference_steps"]
    ref_b = b.metadata["reference_steps"]
    assert set(ref_s) == set(ref_b)
    for name in ref_s:
        assert np.array_equal(ref_s[name], ref_b[name]), name


# ----------------------------------------------------------------------
# kernel-level shape stability (hypothesis)
# ----------------------------------------------------------------------


def _random_stage(n, trials, seed, with_offsets=True):
    rng = np.random.default_rng(seed)
    effective = rng.standard_normal((trials, n, n)) + 3.0 * n * np.eye(n)
    loads = rng.uniform(0.0, 4.0, size=(trials, n))
    v_in = rng.uniform(-1.0, 1.0, size=(trials, n))
    offsets = rng.normal(0.0, 1e-3, size=(trials, n)) if with_offsets else None
    scales = rng.uniform(0.2, 1.0, size=trials)
    return effective, loads, v_in, offsets, scales


class TestKernelShapeStability:
    """The kernel's three shapes are the same bits, by construction."""

    @given(
        n=st.integers(1, 9),
        trials=st.integers(1, 5),
        seed=st.integers(0, 10_000),
        a0=st.sampled_from([np.inf, 1e4, 500.0]),
        with_offsets=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_inv_raw_trial_batch_matches_scalar(self, n, trials, seed, a0, with_offsets):
        effective, loads, v_in, offsets, scales = _random_stage(
            n, trials, seed, with_offsets
        )
        stacked = inv_raw(effective, loads, v_in, offsets, scales, a0)
        for t in range(trials):
            scalar = inv_raw(
                effective[t],
                loads[t],
                v_in[t],
                None if offsets is None else offsets[t],
                float(scales[t]),
                a0,
            )
            assert np.array_equal(stacked[t], scalar)

    @given(
        n=st.integers(1, 9),
        rows=st.integers(1, 6),
        seed=st.integers(0, 10_000),
        a0=st.sampled_from([np.inf, 1e4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_inv_raw_multi_rhs_matches_scalar(self, n, rows, seed, a0):
        effective, loads, v_in, offsets, _ = _random_stage(n, rows, seed)
        shared_eff, shared_load = effective[0], loads[0]
        shared_off = offsets[0]
        stacked = inv_raw(shared_eff, shared_load, v_in, shared_off, 0.5, a0)
        for r in range(rows):
            scalar = inv_raw(shared_eff, shared_load, v_in[r], shared_off, 0.5, a0)
            assert np.array_equal(stacked[r], scalar)

    @given(
        n=st.integers(1, 9),
        rows=st.integers(1, 6),
        seed=st.integers(0, 10_000),
        a0=st.sampled_from([np.inf, 1e4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_mvm_raw_shapes_match(self, n, rows, seed, a0):
        effective, loads, v_in, offsets, _ = _random_stage(n, rows, seed)
        # trial-batched vs scalar
        stacked = mvm_raw(effective, loads, v_in, offsets, a0)
        for t in range(rows):
            assert np.array_equal(
                stacked[t], mvm_raw(effective[t], loads[t], v_in[t], offsets[t], a0)
            )
        # multi-RHS (shared matrix) vs scalar
        multi = mvm_raw(effective[0], loads[0], v_in, offsets[0], a0)
        for r in range(rows):
            assert np.array_equal(
                multi[r], mvm_raw(effective[0], loads[0], v_in[r], offsets[0], a0)
            )

    @given(n=st.integers(1, 10), rows=st.integers(1, 7), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_factored_system_matches_per_column(self, n, rows, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((n, n)) + 3.0 * n * np.eye(n)
        rhs = rng.standard_normal((rows, n))
        fact = FactoredSystem(matrix)
        block = fact.solve(rhs)
        for r in range(rows):
            assert np.array_equal(block[r], fact.solve(rhs[r]))
            assert np.array_equal(block[r], solve_columns(matrix, rhs[r]))
        # the stacked-slices entry point is the same calls per trial
        matrices = np.broadcast_to(matrix, (rows, n, n))
        assert np.array_equal(solve_slices(matrices, rhs), block)
        assert np.array_equal(inv_solve(matrix, rhs), block)
        assert np.array_equal(inv_solve(np.array(matrices), rhs), block)

    @given(n=st.integers(1, 9), rows=st.integers(1, 6), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_contract_rows_match_scalar(self, n, rows, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((n, n))
        v = rng.standard_normal((rows, n))
        multi = contract(matrix, v)
        for r in range(rows):
            assert np.array_equal(multi[r], contract(matrix, v[r]))

    def test_factored_system_rejects_singular(self):
        singular = np.zeros((3, 3))
        singular[0, 0] = 1.0
        with pytest.raises(SolverError, match="singular"):
            FactoredSystem(singular)
        with pytest.raises(SolverError, match="singular"):
            inv_solve(singular, np.ones(3))
        with pytest.raises(SolverError, match="ideal block matrix is singular"):
            solve_columns(singular, np.ones(3), what="ideal block matrix")

    def test_saturate_shapes(self):
        raw = np.array([[0.5, -2.0], [0.1, 0.2]])
        clipped, sat = saturate(raw, 1.0)
        assert np.array_equal(sat, [True, False])
        assert clipped.max() <= 1.0 and clipped.min() >= -1.0
        scalar_out, scalar_sat = saturate(raw[0], 1.0)
        assert np.array_equal(scalar_out, clipped[0]) and bool(scalar_sat) is True
        no_out, no_sat = saturate(raw, np.inf)
        assert no_out is raw and not no_sat.any()

    def test_snh_cascade_matches_two_transfers(self):
        v = np.array([0.25, -0.5, 1.0])
        gain_error = 0.013
        # Two successive products, never (1 + e) ** 2: the scalar macro
        # runs two physical SampleHold stages.
        expected = (v * (1.0 + gain_error)) * (1.0 + gain_error)
        assert np.array_equal(snh_cascade(v, gain_error), expected)


class TestOffsetStreamExactness:
    """Batched offset draws replay the scalar per-trial streams exactly."""

    @given(
        sigma=st.sampled_from([1e-4, 0.25e-3]),
        trials=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_draw_offsets_batch_matches_sequential(self, sigma, trials, seed):
        sizes = [4, 7, 4]  # duplicate size: drawn once, reused
        rngs = [np.random.default_rng(seed + t) for t in range(trials)]
        batch = draw_offsets_batch(sigma, sizes, rngs)
        fresh = [np.random.default_rng(seed + t) for t in range(trials)]
        for t, rng in enumerate(fresh):
            for size in (4, 7):  # first-use order, each size once
                assert np.array_equal(batch[size][t], rng.normal(0.0, sigma, size=size))

    def test_zero_sigma_is_none(self):
        assert draw_offsets_batch(0.0, [3, 5], []) == {3: None, 5: None}
        assert draw_offsets(0.0, 4, rng=0) is None

    def test_scalar_draw_matches_generator_stream(self):
        drawn = draw_offsets(1e-3, 5, rng=42)
        expected = np.random.default_rng(42).normal(0.0, 1e-3, size=5)
        assert np.array_equal(drawn, expected)


class TestVariationStreamExactness:
    """``apply_batch`` consumes generators exactly like sequential apply."""

    @pytest.mark.parametrize(
        "model",
        [
            NoVariation(),
            GaussianVariation(5e-6),
            RelativeGaussianVariation(0.05),
            LognormalVariation(0.05),
        ],
        ids=lambda m: type(m).__name__,
    )
    @given(trials=st.integers(1, 6), seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_batch_equals_sequential_stream(self, model, trials, seed):
        target = np.abs(np.random.default_rng(seed).uniform(0.0, 1e-4, size=(4, 3)))
        batched = model.apply_batch(target, trials, np.random.default_rng(seed))
        rng = np.random.default_rng(seed)
        sequential = np.stack([model.apply(target, rng) for _ in range(trials)])
        assert np.array_equal(batched, sequential)


# ----------------------------------------------------------------------
# end-to-end: scalar vs trial-batched engine
# ----------------------------------------------------------------------


class TestScalarVsTrialBatched:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("family", sorted(MATRIX_FAMILIES))
    def test_records_bit_identical(self, config_name, family):
        config = CONFIGS[config_name]
        factory = MATRIX_FAMILIES[family]
        sizes, trials = (6, 9, 12), 3
        seq = run_trials(
            {
                "orig": lambda: OriginalAMCSolver(config),
                "block": lambda: BlockAMCSolver(config),
            },
            factory,
            sizes,
            trials,
            seed=70,
        )
        bat = run_trials_batched(
            {
                "orig": OriginalAMCSolver(config),
                "block": BlockAMCSolver(config),
            },
            factory,
            sizes,
            trials,
            seed=70,
        )
        _records_exactly_equal(seq, bat)

    def test_noise_configs_run_batched_not_fallback(self):
        """The noise configs exercise the batched engine, not the scalar
        fallback — otherwise their equivalence tests would be vacuous."""
        from repro.core.batched import is_batchable_config

        for name in ("output_noise", "snh_noise", "noisy_saturating"):
            config = CONFIGS[name]
            assert is_batchable_config(config), name
            assert make_batched_runner(OriginalAMCSolver(config)) is not None, name
            assert make_batched_runner(BlockAMCSolver(config)) is not None, name

    def test_exact_parasitics_config_runs_batched_not_fallback(self):
        """Exact extraction is batchable (ISSUE-8) — its equivalence
        tests above must exercise the batched engine, not the scalar
        fallback."""
        from repro.core.batched import is_batchable_config

        config = CONFIGS["exact_parasitics"]
        assert config.parasitics.fidelity == "exact"
        assert is_batchable_config(config)
        assert make_batched_runner(OriginalAMCSolver(config)) is not None
        assert make_batched_runner(BlockAMCSolver(config)) is not None

    def test_noise_configs_bit_identical_under_ranging_reruns(self):
        """Fresh noise redraws per ranging attempt, exactly like scalar."""
        config = CONFIGS["noisy_saturating"]
        factory = MATRIX_FAMILIES["graded"]
        seq = run_trials(
            {"orig": lambda: OriginalAMCSolver(config),
             "block": lambda: BlockAMCSolver(config)},
            factory, (10, 12), 3, seed=11,
        )
        bat = run_trials_batched(
            {"orig": OriginalAMCSolver(config),
             "block": BlockAMCSolver(config)},
            factory, (10, 12), 3, seed=11,
        )
        _records_exactly_equal(seq, bat)

    def test_graded_family_actually_reran_ranging(self):
        """The ill-conditioned family exercises the rerun path (sanity)."""
        config = CONFIGS["variation"]
        matrix = graded_matrix(12, 0.8, rng=3)
        b = random_vector(12, rng=4)
        result = OriginalAMCSolver(config).solve(matrix, b, rng=7)
        k0 = input_voltage_scale(b, config.converters.v_fs)
        assert result.metadata["input_scale"] != k0


# ----------------------------------------------------------------------
# end-to-end: scalar loop vs multi-RHS solve_many
# ----------------------------------------------------------------------


class TestScalarVsMultiRHS:
    @pytest.mark.parametrize(
        "config_name",
        ["ideal", "variation", "coarse_quant", "saturating", "snh_gain_error"],
    )
    @pytest.mark.parametrize("rhs_count", [1, 2, 5])
    def test_solve_many_bit_identical(self, config_name, rhs_count):
        config = CONFIGS[config_name]
        matrix = wishart_matrix(17, rng=0)
        rhs = [random_vector(17, rng=i + 1) for i in range(rhs_count)]
        sequential_prep = BlockAMCSolver(config).prepare(matrix, rng=5)
        gen = np.random.default_rng(9)
        sequential = [sequential_prep.solve(b, gen) for b in rhs]
        batched_prep = BlockAMCSolver(config).prepare(matrix, rng=5)
        batched = batched_prep.solve_many(rhs, np.random.default_rng(9))
        for s, b in zip(sequential, batched):
            _results_exactly_equal(s, b)

    def test_solve_many_with_ranging_rerun(self):
        """Clipping right-hand sides rerun per column, like scalar calls."""
        config = CONFIGS["variation"]
        matrix = graded_matrix(14, 0.8, rng=6)
        rhs = [random_vector(14, rng=i) for i in range(4)]
        prep_a = BlockAMCSolver(config).prepare(matrix, rng=5)
        gen = np.random.default_rng(9)
        sequential = [prep_a.solve(b, gen) for b in rhs]
        prep_b = BlockAMCSolver(config).prepare(matrix, rng=5)
        batched = prep_b.solve_many(rhs, np.random.default_rng(9))
        k0 = input_voltage_scale_many(np.stack(rhs), config.converters.v_fs)
        reran = [
            r.metadata["input_scale"] != k for r, k in zip(batched, k0)
        ]
        assert any(reran), "workload must exercise the rerun path"
        for s, b in zip(sequential, batched):
            _results_exactly_equal(s, b)

    def test_batch_composition_invariance(self):
        """A column's bits never depend on its batch neighbours."""
        config = CONFIGS["variation"]
        matrix = wishart_matrix(16, rng=2)
        rhs = [random_vector(16, rng=i) for i in range(6)]
        prep = BlockAMCSolver(config).prepare(matrix, rng=5)
        full = prep.solve_many(rhs, np.random.default_rng(0))
        prefix = prep.solve_many(rhs[:2], np.random.default_rng(0))
        for a, b in zip(prefix, full[:2]):
            _results_exactly_equal(a, b)
        # reversed order: each result only depends on its own column
        swapped = prep.solve_many(list(reversed(rhs)), np.random.default_rng(0))
        for a, b in zip(reversed(swapped), full):
            _results_exactly_equal(a, b)


# ----------------------------------------------------------------------
# multi-RHS digital solvers: block == scalar, bit for bit
# ----------------------------------------------------------------------


#: (scalar, block) pairs plus a matrix family each converges on.
DIGITAL_PAIRS = {
    "jacobi": (digital.jacobi, digital.jacobi_many, "dominant", {}),
    "gauss_seidel": (digital.gauss_seidel, digital.gauss_seidel_many, "dominant", {}),
    "richardson": (
        digital.richardson,
        digital.richardson_many,
        "wishart",
        {"max_iter": 400},
    ),
    "cg": (
        digital.conjugate_gradient,
        digital.conjugate_gradient_many,
        "wishart",
        {},
    ),
    "gmres": (digital.gmres, digital.gmres_many, "dominant", {"restart": 5}),
}


def _digital_system(method: str, n: int, seed):
    rng = np.random.default_rng(seed)
    family = DIGITAL_PAIRS[method][2]
    return MATRIX_FAMILIES[family](n, rng), rng


def _iter_results_equal(scalar, block):
    assert np.array_equal(scalar.x, block.x)
    assert scalar.iterations == block.iterations
    assert scalar.residuals == block.residuals
    assert scalar.converged == block.converged
    assert scalar.method == block.method


class TestDigitalManyShapeStability:
    """Every ``*_many`` digital solver equals the scalar loop bitwise."""

    @pytest.mark.parametrize("method", sorted(DIGITAL_PAIRS))
    @given(n=st.integers(2, 12), batch=st.integers(1, 5), seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_batch_matches_scalar_bitwise(self, method, n, batch, seed):
        scalar_fn, many_fn, _, kwargs = DIGITAL_PAIRS[method]
        matrix, rng = _digital_system(method, n, seed)
        bs = np.stack([random_vector(n, rng) for _ in range(batch)])
        block = many_fn(matrix, bs, **kwargs)
        for j in range(batch):
            _iter_results_equal(scalar_fn(matrix, bs[j], **kwargs), block[j])

    @pytest.mark.parametrize("method", sorted(DIGITAL_PAIRS))
    @given(n=st.integers(2, 10), seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_batch_composition_invariance(self, method, n, seed):
        _, many_fn, _, kwargs = DIGITAL_PAIRS[method]
        matrix, rng = _digital_system(method, n, seed)
        bs = np.stack([random_vector(n, rng) for _ in range(4)])
        full = many_fn(matrix, bs, **kwargs)
        sub = many_fn(matrix, bs[[2, 0]], **kwargs)
        _iter_results_equal(full[2], sub[0])
        _iter_results_equal(full[0], sub[1])

    @pytest.mark.parametrize("method", sorted(DIGITAL_PAIRS))
    @given(n=st.integers(2, 10), batch=st.integers(1, 4), seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_warm_start_block_handling(self, method, n, batch, seed):
        """A ``(batch, n)`` x0 block equals per-column scalar warm starts;
        a single ``(n,)`` x0 broadcasts to every column."""
        scalar_fn, many_fn, _, kwargs = DIGITAL_PAIRS[method]
        matrix, rng = _digital_system(method, n, seed)
        bs = np.stack([random_vector(n, rng) for _ in range(batch)])
        x0_block = 0.1 * np.stack([random_vector(n, rng) for _ in range(batch)])
        block = many_fn(matrix, bs, x0=x0_block, **kwargs)
        for j in range(batch):
            _iter_results_equal(
                scalar_fn(matrix, bs[j], x0=x0_block[j], **kwargs), block[j]
            )
        shared = x0_block[0]
        broadcast = many_fn(matrix, bs, x0=shared, **kwargs)
        for j in range(batch):
            _iter_results_equal(
                scalar_fn(matrix, bs[j], x0=shared, **kwargs), broadcast[j]
            )

    def test_block_validation(self):
        matrix = diagonally_dominant_matrix(4, np.random.default_rng(0))
        bs = np.ones((2, 4))
        with pytest.raises(ValidationError):
            digital.jacobi_many(matrix, np.ones(4))  # 1-D is not a block
        with pytest.raises(ValidationError):
            digital.jacobi_many(matrix, np.ones((0, 4)))
        with pytest.raises(ValidationError):
            digital.jacobi_many(matrix, np.ones((2, 5)))
        with pytest.raises(ValidationError):
            digital.jacobi_many(matrix, bs, x0=np.ones((3, 4)))
        with pytest.raises(SolverError):
            digital.jacobi_many(matrix, np.vstack([np.ones(4), np.zeros(4)]))

    def test_converged_columns_stop_iterating(self):
        """A column seeded with the exact solution converges immediately
        while its neighbours keep iterating (the mask at work)."""
        rng = np.random.default_rng(3)
        matrix = MATRIX_FAMILIES["wishart"](8, rng)
        bs = np.stack([random_vector(8, rng) for _ in range(3)])
        x0 = np.zeros_like(bs)
        x0[1] = np.linalg.solve(matrix, bs[1])
        results = digital.conjugate_gradient_many(matrix, bs, x0=x0, tol=1e-9)
        assert results[1].iterations == 0
        assert results[0].iterations > 0 and results[2].iterations > 0

    @pytest.mark.filterwarnings("ignore:overflow")
    def test_divergent_column_raises_like_sequential_loop(self):
        # Strongly non-dominant: Jacobi blows up -> ConvergenceError on
        # non-finite, or converged=False within budget (same contract
        # as the scalar solver, batch-wide).
        matrix = np.array([[1.0, 10.0], [10.0, 1.0]])
        bs = np.ones((2, 2))
        try:
            results = digital.jacobi_many(matrix, bs, max_iter=500)
            assert not results[0].converged
        except ConvergenceError:
            pass


class TestFgmresManyEquivalence:
    """Lockstep FGMRES == a sequential loop of scalar FGMRES calls."""

    @given(
        n=st.integers(6, 14),
        batch=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_block_amc_preconditioner_bit_identical(self, n, batch, seed):
        config = CONFIGS["variation"]
        rng = np.random.default_rng(seed)
        matrix = wishart_matrix(n, rng)
        bs = np.stack([random_vector(n, rng) for _ in range(batch)])
        prepared = BlockAMCSolver(config).prepare(matrix, rng=5)
        sequential = [
            fgmres(matrix, bs[j], amc_preconditioner(prepared, rng=0),
                   tol=1e-11, restart=6)
            for j in range(batch)
        ]
        block = fgmres_many(
            matrix, bs, amc_block_preconditioner(prepared, rng=0),
            tol=1e-11, restart=6,
        )
        for s, m in zip(sequential, block):
            _iter_results_equal(s, m)

    def test_block_preconditioner_shape_enforced(self):
        matrix = wishart_matrix(6, rng=0)
        bs = np.stack([random_vector(6, rng=1)])
        with pytest.raises(SolverError, match="block preconditioner"):
            fgmres_many(matrix, bs, lambda rows: rows[:, :3])


# ----------------------------------------------------------------------
# end-to-end: multi-stage solve_many vs the sequential solve loop
# ----------------------------------------------------------------------


def _multistage_results_exactly_equal(s, b):
    """Full multi-stage SolveResult comparison, bit-for-bit."""
    assert np.array_equal(s.x, b.x)
    assert np.array_equal(s.reference, b.reference)
    assert s.relative_error == b.relative_error
    assert s.saturated == b.saturated
    assert s.analog_time_s == b.analog_time_s
    assert s.solver == b.solver
    assert s.metadata == b.metadata
    assert len(s.operations) == len(b.operations)
    for op_s, op_b in zip(s.operations, b.operations):
        assert op_s.label == op_b.label and op_s.kind == op_b.kind
        assert np.array_equal(op_s.output, op_b.output), op_s.label
        assert np.array_equal(op_s.ideal_output, op_b.ideal_output), op_s.label
        assert op_s.settling_time_s == op_b.settling_time_s
        assert op_s.saturated == op_b.saturated
        assert (op_s.rows, op_s.cols, op_s.opa_count, op_s.device_count) == (
            op_b.rows, op_b.cols, op_b.opa_count, op_b.device_count
        )


#: Configurations the batched multi-stage recursion executes directly,
#: plus the fresh-noise / MNA ones that must fall back transparently.
MULTISTAGE_BATCHED_CONFIGS = [
    "ideal", "variation", "interconnect", "exact_parasitics",
    "coarse_quant", "saturating", "snh_gain_error",
]
MULTISTAGE_FALLBACK_CONFIGS = ["output_noise", "snh_noise"]


class TestScalarVsMultiStageMany:
    def _compare(self, config, matrix, rhs_count, stages=2, prep_seed=5, solve_seed=9):
        n = matrix.shape[0]
        rhs = [random_vector(n, rng=i + 1) for i in range(rhs_count)]
        sequential_prep = MultiStageSolver(config, stages=stages).prepare(
            matrix, rng=prep_seed
        )
        gen = np.random.default_rng(solve_seed)
        sequential = [sequential_prep.solve(b, gen) for b in rhs]
        batched_prep = MultiStageSolver(config, stages=stages).prepare(
            matrix, rng=prep_seed
        )
        batched = batched_prep.solve_many(rhs, np.random.default_rng(solve_seed))
        for s, b in zip(sequential, batched):
            _multistage_results_exactly_equal(s, b)
        return batched

    @pytest.mark.parametrize("config_name", MULTISTAGE_BATCHED_CONFIGS)
    @pytest.mark.parametrize("family", sorted(MATRIX_FAMILIES))
    def test_solve_many_bit_identical(self, config_name, family):
        matrix = MATRIX_FAMILIES[family](16, np.random.default_rng(0))
        self._compare(CONFIGS[config_name], matrix, rhs_count=4)

    @pytest.mark.parametrize("config_name", MULTISTAGE_FALLBACK_CONFIGS)
    def test_noise_configs_fall_back_bit_identical(self, config_name):
        """Per-operation-noise configs transparently loop the scalar path
        with the shared generator — still bit-identical to the loop."""
        matrix = MATRIX_FAMILIES["wishart"](12, np.random.default_rng(2))
        self._compare(CONFIGS[config_name], matrix, rhs_count=3)

    def test_mna_config_falls_back_bit_identical(self):
        config = HardwareConfig.paper_variation().with_(use_mna=True)
        matrix = MATRIX_FAMILIES["dominant"](8, np.random.default_rng(4))
        self._compare(config, matrix, rhs_count=2)

    def test_non_power_of_two_and_deeper_recursion(self):
        config = CONFIGS["variation"]
        matrix = MATRIX_FAMILIES["dominant"](11, np.random.default_rng(6))
        self._compare(config, matrix, rhs_count=3)
        matrix3 = MATRIX_FAMILIES["wishart"](12, np.random.default_rng(7))
        self._compare(config, matrix3, rhs_count=3, stages=3)

    def test_direct_inv_fallback_nodes(self):
        """Deep partitioning of a tiny system reaches the 1x1 direct-INV
        terminal nodes in both the scalar and the batched recursion."""
        config = CONFIGS["variation"]
        matrix = MATRIX_FAMILIES["dominant"](4, np.random.default_rng(8))
        self._compare(config, matrix, rhs_count=3, stages=3)

    def test_lean_fallback_path(self):
        """lean=True composes with the noise fallback loop."""
        config = CONFIGS["output_noise"]
        matrix = MATRIX_FAMILIES["wishart"](12, np.random.default_rng(5))
        rhs = [random_vector(12, rng=i) for i in range(3)]
        prep = MultiStageSolver(config, stages=2).prepare(matrix, rng=5)
        full = prep.solve_many(rhs, np.random.default_rng(0))
        prep2 = MultiStageSolver(config, stages=2).prepare(matrix, rng=5)
        lean = prep2.solve_many(rhs, np.random.default_rng(0), lean=True)
        for f, l in zip(full, lean):
            assert np.array_equal(f.x, l.x)
            assert f.saturated == l.saturated

    def test_empty_batch_and_bad_stage_count(self):
        prep = MultiStageSolver(CONFIGS["ideal"], stages=2).prepare(
            MATRIX_FAMILIES["wishart"](8, np.random.default_rng(0)), rng=1
        )
        with pytest.raises(ValidationError, match="at least one"):
            prep.solve_many([])
        with pytest.raises(SolverError):
            MultiStageSolver(stages=0)
        assert MultiStageSolver(stages=2).name == "blockamc-2stage"

    def test_ranging_rerun_columns_match(self):
        """Ill-conditioned blocks rerun gain ranging per column."""
        matrix = graded_matrix(14, 0.8, rng=6)
        self._compare(CONFIGS["variation"], matrix, rhs_count=4)

    def test_32_rhs_batch_bit_identical(self):
        """The acceptance-criterion batch size, asserted exactly."""
        matrix = MATRIX_FAMILIES["wishart"](16, np.random.default_rng(1))
        batched = self._compare(CONFIGS["variation"], matrix, rhs_count=32)
        assert len(batched) == 32

    def test_batch_composition_invariance(self):
        """A column's bits never depend on its batch neighbours."""
        config = CONFIGS["variation"]
        matrix = MATRIX_FAMILIES["wishart"](16, np.random.default_rng(3))
        rhs = [random_vector(16, rng=i) for i in range(6)]
        prep = MultiStageSolver(config, stages=2).prepare(matrix, rng=5)
        full = prep.solve_many(rhs, np.random.default_rng(0))
        prefix = prep.solve_many(rhs[:2], np.random.default_rng(0))
        for a, b in zip(prefix, full[:2]):
            _multistage_results_exactly_equal(a, b)
        swapped = prep.solve_many(list(reversed(rhs)), np.random.default_rng(0))
        for a, b in zip(reversed(swapped), full):
            _multistage_results_exactly_equal(a, b)

    def test_lean_mode_same_solution_bits(self):
        config = CONFIGS["variation"]
        matrix = MATRIX_FAMILIES["wishart"](16, np.random.default_rng(8))
        rhs = [random_vector(16, rng=i) for i in range(5)]
        prep = MultiStageSolver(config, stages=2).prepare(matrix, rng=5)
        full = prep.solve_many(rhs, np.random.default_rng(0))
        lean = prep.solve_many(rhs, np.random.default_rng(0), lean=True)
        for f, l in zip(full, lean):
            assert np.array_equal(f.x, l.x)
            assert np.array_equal(f.reference, l.reference)
            assert f.relative_error == l.relative_error
            assert f.saturated == l.saturated
            assert f.analog_time_s == l.analog_time_s
            assert l.operations == ()
            assert l.metadata == {}

    def test_interleaved_scalar_and_batched_share_offsets(self):
        """Quasi-static offsets drawn by either path are shared by the
        other — exactly like repeated scalar solves on one tree."""
        config = CONFIGS["variation"]
        matrix = MATRIX_FAMILIES["wishart"](16, np.random.default_rng(9))
        b = random_vector(16, rng=1)
        prep = MultiStageSolver(config, stages=2).prepare(matrix, rng=5)
        warm = prep.solve(b, np.random.default_rng(0))  # draws all offsets
        (batched,) = prep.solve_many([b], np.random.default_rng(123))
        again = prep.solve(b, np.random.default_rng(456))
        assert np.array_equal(warm.x, batched.x)
        assert np.array_equal(batched.x, again.x)


# ----------------------------------------------------------------------
# input scaling and gain-ranging edge cases
# ----------------------------------------------------------------------


class TestInputScaling:
    def test_zero_b_rejected_scalar(self):
        with pytest.raises(ValidationError, match="non-zero"):
            input_voltage_scale(np.zeros(4), 1.0)

    def test_zero_row_rejected_batched(self):
        bs = np.ones((3, 4))
        bs[1] = 0.0
        with pytest.raises(ValidationError, match="non-zero"):
            input_voltage_scale_many(bs, 1.0)

    def test_near_zero_b_scales_finite_and_matches(self):
        b = np.full(4, 1e-300)
        scalar = input_voltage_scale(b, 1.0)
        assert np.isfinite(scalar) and scalar > 0.0
        many = input_voltage_scale_many(np.stack([b, b * 2.0]), 1.0)
        assert many[0] == scalar

    def test_fraction_bounds_enforced(self):
        with pytest.raises(ValidationError):
            input_voltage_scale(np.ones(3), 1.0, fraction=0.0)
        with pytest.raises(ValidationError):
            input_voltage_scale(np.ones(3), 1.0, fraction=1.0)

    @given(seed=st.integers(0, 10_000), rows=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_batched_scale_matches_scalar_rows(self, seed, rows):
        bs = np.random.default_rng(seed).uniform(-2.0, 2.0, size=(rows, 5))
        bs[np.all(bs == 0.0, axis=1)] = 1.0
        many = input_voltage_scale_many(bs, 1.0)
        for r in range(rows):
            assert many[r] == input_voltage_scale(bs[r], 1.0)


class TestGainRangingEdgeCases:
    V_FS = 1.0

    def _linear_run(self, gain):
        """An analog stage whose peak is ``gain * k`` (linear, like INV)."""
        calls = []

        def run(k):
            calls.append(k)
            return gain * k, {"k_seen": k}

        return run, calls

    def test_accepts_first_attempt_when_within_headroom(self):
        run, calls = self._linear_run(gain=1.0)
        payload, k = auto_range(run, 0.5, self.V_FS)
        assert len(calls) == 1 and k == 0.5
        assert payload["k_seen"] == 0.5

    def test_clipping_rerun_rescales_with_margin(self):
        run, calls = self._linear_run(gain=4.0)
        payload, k = auto_range(run, 0.5, self.V_FS)
        # first attempt peaks at 2.0 > 0.9: one corrective rerun lands
        # exactly on the ranging_rescale target
        expected = ranging_rescale(0.5, 2.0, self.V_FS)
        assert len(calls) == 2
        assert k == expected == 0.5 * (RANGING_HEADROOM / 2.0) * QUANTIZATION_MARGIN
        assert payload["k_seen"] == expected

    def test_exhaustion_returns_last_attempt(self):
        """A stage that always clips still returns after MAX attempts."""
        calls = []

        def run(k):
            calls.append(k)
            return 10.0 * self.V_FS, {"k_seen": k}  # never within headroom

        payload, k = auto_range(run, 1.0, self.V_FS)
        assert len(calls) == MAX_RANGING_ATTEMPTS
        assert k == calls[-1] and payload["k_seen"] == calls[-1]
        # every rescale applied the single policy step
        for before, after in zip(calls, calls[1:]):
            assert after == ranging_rescale(before, 10.0 * self.V_FS, self.V_FS)

    def test_auto_range_many_matches_scalar_elementwise(self):
        """The vectorized loop is the scalar loop, trial by trial."""
        gains = np.array([0.5, 3.0, 8.0, 40.0])

        def run_many(k, indices):
            peaks = gains[indices] * k
            return peaks, {"k_seen": k.copy()}

        k0 = np.full(gains.size, 0.6)
        final, final_k = auto_range_many(run_many, k0, self.V_FS)
        for t, gain in enumerate(gains):
            run, _ = self._linear_run(gain)
            payload, k = auto_range(run, 0.6, self.V_FS)
            assert final_k[t] == k
            assert final["k_seen"][t] == payload["k_seen"]

    def test_auto_range_many_exhaustion_subset(self):
        """Trials that never settle take all attempts; others exit early."""
        attempts_seen = {"count": 0}

        def run_many(k, indices):
            attempts_seen["count"] += 1
            peaks = np.where(indices == 1, 10.0, 0.5 * self.V_FS)
            return peaks, {"k_seen": k.copy()}

        k0 = np.array([0.4, 0.4])
        final, final_k = auto_range_many(run_many, k0, self.V_FS)
        assert attempts_seen["count"] == MAX_RANGING_ATTEMPTS
        assert final_k[0] == 0.4  # accepted on attempt 0
        assert final_k[1] != 0.4  # rescaled every attempt
        assert final["k_seen"][1] == final_k[1]


# ----------------------------------------------------------------------
# float32 precision tier: the documented tolerance contract, on the grid
# ----------------------------------------------------------------------


def _f32(config: HardwareConfig) -> HardwareConfig:
    return config.with_(backend="numpy-f32")


class TestFloat32Tier:
    """``numpy-f32`` satisfies :data:`repro.core.backend.F32_TOLERANCE`.

    Bit-identity to float64 is meaningless at this tier (converter code
    flips at LSB boundaries); the contract is the relative-L1 bound the
    backend declares, checked on the full config x matrix-family grid.
    Within the tier, however, the kernel's shape-equivalence guarantees
    still hold bit-exactly — scalar and batched float32 runs produce the
    same float32 bits.
    """

    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("family", sorted(MATRIX_FAMILIES))
    def test_solution_within_contract(self, config_name, family):
        from repro.core.backend import get_backend

        config = CONFIGS[config_name]
        matrix = MATRIX_FAMILIES[family](12, np.random.default_rng(0))
        b = random_vector(12, rng=1)
        ref = BlockAMCSolver(config).solve(matrix, b, rng=7)
        f32 = BlockAMCSolver(_f32(config)).solve(matrix, b, rng=7)
        tolerance = get_backend("numpy-f32").tolerance
        assert f32.x.dtype == np.float32
        assert ref.x.dtype == np.float64
        assert tolerance.admits(f32.x, ref.x), (
            f"deviation {tolerance.deviation(f32.x, ref.x):.3e} exceeds "
            f"the f32 tier contract for {config_name}/{family}"
        )
        # The digital reference is precision-tier-independent: always
        # float64, bit-identical across tiers.
        assert f32.reference.dtype == np.float64
        assert np.array_equal(f32.reference, ref.reference)

    @pytest.mark.parametrize("config_name", ["ideal", "variation", "output_noise"])
    def test_scalar_vs_batched_bit_identical_within_tier(self, config_name):
        """Tier changes precision, not the shape-equivalence contract."""
        config = _f32(CONFIGS[config_name])
        factory = MATRIX_FAMILIES["wishart"]
        seq = run_trials(
            {"orig": lambda: OriginalAMCSolver(config),
             "block": lambda: BlockAMCSolver(config)},
            factory, (6, 10), 3, seed=70,
        )
        bat = run_trials_batched(
            {"orig": OriginalAMCSolver(config),
             "block": BlockAMCSolver(config)},
            factory, (6, 10), 3, seed=70,
        )
        _records_exactly_equal(seq, bat)

    def test_solve_many_bit_identical_within_tier(self):
        config = _f32(CONFIGS["variation"])
        matrix = wishart_matrix(12, rng=0)
        rhs = [random_vector(12, rng=i + 1) for i in range(4)]
        prep_seq = BlockAMCSolver(config).prepare(matrix, rng=5)
        gen = np.random.default_rng(9)
        sequential = [prep_seq.solve(b, gen) for b in rhs]
        prep_many = BlockAMCSolver(config).prepare(matrix, rng=5)
        batched = prep_many.solve_many(rhs, np.random.default_rng(9))
        for s, b in zip(sequential, batched):
            assert s.x.dtype == np.float32 and b.x.dtype == np.float32
            _results_exactly_equal(s, b)

    def test_multistage_f32_within_contract(self):
        config = CONFIGS["variation"]
        matrix = wishart_matrix(16, np.random.default_rng(4))
        b = random_vector(16, rng=2)
        ref = MultiStageSolver(config, stages=2).prepare(matrix, rng=5).solve(
            b, np.random.default_rng(9)
        )
        f32 = MultiStageSolver(_f32(config), stages=2).prepare(matrix, rng=5).solve(
            b, np.random.default_rng(9)
        )
        from repro.core.backend import F32_TOLERANCE

        assert f32.x.dtype == np.float32
        assert F32_TOLERANCE.admits(f32.x, ref.x)

    def test_relative_error_stays_small_at_f32(self):
        """The paper's Eq. 6 metric barely moves at the f32 tier — the
        analog nonidealities dominate float32 rounding by orders of
        magnitude."""
        config = CONFIGS["variation"]
        matrix = wishart_matrix(12, np.random.default_rng(1))
        b = random_vector(12, rng=3)
        ref = OriginalAMCSolver(config).solve(matrix, b, rng=7)
        f32 = OriginalAMCSolver(_f32(config)).solve(matrix, b, rng=7)
        assert abs(f32.relative_error - ref.relative_error) < 5e-3


# ----------------------------------------------------------------------
# drift guards: a skewed copy of the physics fails this suite
# ----------------------------------------------------------------------


class TestMarginDriftGuard:
    """The 0.95 quantization margin exists exactly once.

    These tests demonstrate the suite's detection power: reintroducing a
    private ranging margin in one path (simulated by patching only the
    batched engine's view of ``auto_range_many``) makes the equivalence
    assertions fail on a ranging-heavy workload.
    """

    def _sweep(self, runner_config, solver_seq, solver_bat):
        factory = MATRIX_FAMILIES["graded"]
        seq = run_trials(
            {"orig": solver_seq}, factory, (10, 12), 3, seed=11
        )
        bat = run_trials_batched(
            {"orig": solver_bat}, factory, (10, 12), 3, seed=11
        )
        return seq, bat

    def test_unskewed_paths_agree(self):
        config = CONFIGS["variation"]
        seq, bat = self._sweep(
            config, lambda: OriginalAMCSolver(config), OriginalAMCSolver(config)
        )
        _records_exactly_equal(seq, bat)

    def test_skewed_margin_in_one_path_is_detected(self, monkeypatch):
        """A drifted margin in the batched path breaks bit-equality."""

        def skewed_auto_range_many(run, k0, v_fs):
            count = k0.size
            k = k0.copy()
            active = np.arange(count)
            final: dict[str, np.ndarray] = {}
            final_k = k0.copy()
            for attempt in range(MAX_RANGING_ATTEMPTS):
                peaks, payload = run(k[active], active)
                if attempt == MAX_RANGING_ATTEMPTS - 1:
                    accept = np.ones_like(peaks, dtype=bool)
                else:
                    accept = peaks <= RANGING_HEADROOM * v_fs
                accepted = active[accept]
                for key, values in payload.items():
                    if key not in final:
                        final[key] = np.zeros(
                            (count, *values.shape[1:]), dtype=values.dtype
                        )
                    final[key][accepted] = values[accept]
                final_k[accepted] = k[active][accept]
                if np.all(accept):
                    return final, final_k
                rescale = ~accept
                # The drift under test: 0.90 instead of QUANTIZATION_MARGIN.
                k[active[rescale]] = (
                    k[active[rescale]]
                    * (RANGING_HEADROOM * v_fs / peaks[rescale])
                    * 0.90
                )
                active = active[rescale]
            return final, final_k

        monkeypatch.setattr(
            batched_module, "auto_range_many", skewed_auto_range_many
        )
        config = CONFIGS["variation"]
        seq, bat = self._sweep(
            config, lambda: OriginalAMCSolver(config), OriginalAMCSolver(config)
        )
        diverged = any(
            s.relative_error != b.relative_error for s, b in zip(seq, bat)
        )
        assert diverged, (
            "a skewed ranging margin in one path must break bit-equality "
            "(did the workload stop exercising gain ranging?)"
        )

    def test_margin_literal_not_duplicated_in_call_paths(self):
        """No call path re-states the 0.95 margin (single-source check)."""
        import inspect

        import repro.amc.ops as ops_module
        import repro.core.blockamc as blockamc_module
        import repro.core.original as original_module

        assert QUANTIZATION_MARGIN == 0.95
        for module in (batched_module, blockamc_module, ops_module, original_module):
            source = inspect.getsource(module)
            assert "0.95" not in source, (
                f"{module.__name__} re-states the ranging margin; use "
                "repro.core.common.ranging_rescale instead"
            )


# ----------------------------------------------------------------------
# columnar netlist vs object netlist: bit-identical AssembledMNA systems
# ----------------------------------------------------------------------


def _assert_identical_systems(reference, columnar):
    """Bitwise comparison of two assembled MNA systems."""
    ref = assemble_mna(reference)
    new = assemble_mna(columnar)
    assert isinstance(columnar, ColumnarCircuit)
    assert new.node_index == ref.node_index
    assert new.branch_index == ref.branch_index
    assert new.dense == ref.dense
    if ref.dense:
        assert new.matrix.tobytes() == ref.matrix.tobytes()
    else:
        assert new.matrix.data.tobytes() == ref.matrix.data.tobytes()
        assert new.matrix.indices.tobytes() == ref.matrix.indices.tobytes()
        assert new.matrix.indptr.tobytes() == ref.matrix.indptr.tobytes()
    assert new._source_rows == ref._source_rows
    assert new._base_values == ref._base_values
    return ref, new


#: Node pool for the property test: ground under every accepted spelling
#: plus a handful of regular nodes, so drawn elements hit the interning
#: and canonicalization paths in arbitrary mixtures.
_NODE_POOL = ("0", "gnd", "GND", "n1", "n2", "n3", "n4")

_ELEMENT_KINDS = ("R", "C", "L", "V", "I", "E", "U")


@st.composite
def _netlists(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    specs = []
    for i in range(count):
        kind = draw(st.sampled_from(_ELEMENT_KINDS))
        nodes = [
            draw(st.sampled_from(_NODE_POOL))
            for _ in range(4 if kind == "E" else 3 if kind == "U" else 2)
        ]
        value = draw(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
        )
        specs.append((kind, nodes, value))
    return specs


def _build_object_netlist(specs) -> Circuit:
    circuit = Circuit()
    for i, (kind, nodes, value) in enumerate(specs):
        name = f"X{i}"
        if kind == "R":
            circuit.resistor(nodes[0], nodes[1], value, name)
        elif kind == "C":
            circuit.capacitor(nodes[0], nodes[1], value, name)
        elif kind == "L":
            circuit.inductor(nodes[0], nodes[1], value, name)
        elif kind == "V":
            circuit.vsource(nodes[0], nodes[1], value, name)
        elif kind == "I":
            circuit.isource(nodes[0], nodes[1], value, name)
        elif kind == "E":
            circuit.vcvs(nodes[0], nodes[1], nodes[2], nodes[3], value, name)
        else:
            circuit.opamp(nodes[0], nodes[1], nodes[2], name=name)
    return circuit


class TestColumnarVsObjectNetlist:
    @settings(max_examples=60, deadline=None)
    @given(specs=_netlists())
    def test_random_netlists_assemble_identically(self, specs):
        reference = _build_object_netlist(specs)
        columnar = ColumnarCircuit.from_circuit(reference)
        assert columnar.nodes() == reference.nodes()
        try:
            ref = assemble_mna(reference)
        except (ValidationError, Exception) as exc:
            # Netlists with no unknowns raise in both representations.
            with pytest.raises(type(exc)):
                assemble_mna(columnar)
            return
        _assert_identical_systems(reference, columnar)

    def test_multi_element_runs_match_per_element_stamping(self):
        """A bulk run's element-major COO emission equals per-element
        stamping — the ordering rule that keeps duplicate accumulation
        (and therefore every low bit) identical."""
        reference = Circuit()
        reference.resistors(
            ["a", "a", "b"], ["b", "0", "c"], [1.0, 2.0, 3.0],
            ["R0", "R1", "R2"],
        )
        reference.vsources(["a", "c"], ["0", "0"], [1.0, -2.0], ["V0", "V1"])
        reference.conductors(["b"], ["c"], [0.25], ["G0"])

        columnar = ColumnarCircuit()
        columnar.resistors(
            ["a", "a", "b"], ["b", "0", "c"], [1.0, 2.0, 3.0],
            ["R0", "R1", "R2"],
        )
        columnar.vsources(["a", "c"], ["0", "0"], [1.0, -2.0], ["V0", "V1"])
        columnar.conductors(["b"], ["c"], [0.25], ["G0"])
        _assert_identical_systems(reference, columnar)

    MVM_KWARGS = {
        "plain": {},
        "ladder": {"r_wire": 1.0},
        "finite_gain": {"opamp_gain": 2e4},
        "offsets": {"offsets": True},
        "everything": {"r_wire": 0.5, "opamp_gain": 1e5, "offsets": True},
    }

    @staticmethod
    def _mvm_args(rows, cols, sparse=False):
        rng = np.random.default_rng(17)
        g_pos = rng.uniform(1e-6, 1e-4, size=(rows, cols))
        g_neg = rng.uniform(1e-6, 1e-4, size=(rows, cols))
        if sparse:
            g_pos[rng.random((rows, cols)) < 0.4] = 0.0
            g_neg[rng.random((rows, cols)) < 0.4] = 0.0
        v_in = rng.uniform(-1.0, 1.0, size=cols)
        return g_pos, g_neg, v_in

    def _resolve(self, kwargs, rows):
        kwargs = dict(kwargs)
        if kwargs.pop("offsets", False):
            kwargs["offsets"] = np.linspace(-1e-3, 1e-3, rows)
        return kwargs

    @pytest.mark.parametrize("case", sorted(MVM_KWARGS))
    def test_mvm_generator_columnar_path(self, case):
        rows, cols = 5, 4
        g_pos, g_neg, v_in = self._mvm_args(rows, cols, sparse=True)
        kwargs = self._resolve(self.MVM_KWARGS[case], rows)
        ref_c, ref_out = build_mvm_circuit(g_pos, g_neg, v_in, 1e-4, **kwargs)
        col_c, col_out = build_mvm_circuit(
            g_pos, g_neg, v_in, 1e-4, columnar=True, **kwargs
        )
        assert col_out == ref_out
        _assert_identical_systems(ref_c, col_c)
        ref_sol = solve_dc(ref_c)
        col_sol = solve_dc(col_c)
        assert np.array_equal(
            col_sol.voltages(col_out), ref_sol.voltages(ref_out)
        )
        assert np.array_equal(
            col_sol.resistor_power(), ref_sol.resistor_power()
        )

    @pytest.mark.parametrize("case", sorted(MVM_KWARGS))
    def test_inv_generator_columnar_path(self, case):
        n = 5
        g_pos, g_neg, v_in = self._mvm_args(n, n)
        kwargs = self._resolve(self.MVM_KWARGS[case], n)
        ref_c, ref_out = build_inv_circuit(g_pos, g_neg, v_in, 1e-4, **kwargs)
        col_c, col_out = build_inv_circuit(
            g_pos, g_neg, v_in, 1e-4, columnar=True, **kwargs
        )
        assert col_out == ref_out
        _assert_identical_systems(ref_c, col_c)
        ref_sol = solve_dc(ref_c)
        col_sol = solve_dc(col_c)
        assert np.array_equal(
            col_sol.voltages(col_out), ref_sol.voltages(ref_out)
        )

    def test_columnar_enforces_object_netlist_invariants(self):
        """The columnar container rejects exactly what the object
        netlist rejects — so equivalence can never be voided by one
        representation accepting a netlist the other refuses."""
        from repro.errors import CircuitError

        col = ColumnarCircuit()
        obj = Circuit()
        cases = [
            (lambda c: c.resistors(["a"], ["0"], [0.0], ["R1"]),),
            (lambda c: c.conductors(["a"], ["0"], [-1.0], ["G1"]),),
            (lambda c: c.resistors(["a", "b"], ["0"], [1.0], ["R1"]),),
            (lambda c: c.resistors([""], ["0"], [1.0], ["R1"]),),
            (lambda c: c.resistors(["a", "b"], ["0", "0"], [1.0, 1.0], ["R1", "R1"]),),
        ]
        for (call,) in cases:
            with pytest.raises(CircuitError):
                call(col)
            with pytest.raises(CircuitError):
                call(obj)
        # Columnar-only guard rails: ids out of range, unnamed branch
        # kinds, complex gains (AC is object-netlist territory).
        with pytest.raises(CircuitError, match="out of range"):
            col.resistors(
                np.array([9], dtype=np.intp), np.array([-1], dtype=np.intp), [1.0]
            )
        with pytest.raises(CircuitError, match="names"):
            col._append("V", None, 1, a=np.zeros(1, np.intp))
        with pytest.raises(CircuitError, match="real"):
            col.vcvs(["o"], ["0"], ["x"], ["y"], [1j], ["E1"])
        with pytest.raises(CircuitError, match="empty"):
            assemble_mna(ColumnarCircuit())
        grounded = ColumnarCircuit()
        grounded.resistors(["gnd"], ["GND"], [1.0])
        with pytest.raises(CircuitError, match="unknowns"):
            assemble_mna(grounded)
        # Duplicate-name collision across runs, like the object netlist.
        col2 = ColumnarCircuit()
        col2.vsources(["a"], ["0"], [1.0], ["V1"])
        with pytest.raises(CircuitError, match="duplicate"):
            col2.isources(["a"], ["0"], [1.0], ["V1"])

    def test_mvm_ladder_sparse_system_identical(self):
        """A ladder big enough to assemble sparse (csc path, not dense)."""
        rows = cols = 24
        g_pos, g_neg, v_in = self._mvm_args(rows, cols)
        ref_c, _ = build_mvm_circuit(g_pos, g_neg, v_in, 1e-4, r_wire=1.0)
        col_c, _ = build_mvm_circuit(
            g_pos, g_neg, v_in, 1e-4, r_wire=1.0, columnar=True
        )
        ref, new = _assert_identical_systems(ref_c, col_c)
        assert not ref.dense


# ----------------------------------------------------------------------
# batched exact parasitics vs the scalar Schur engine
# ----------------------------------------------------------------------


class TestExactParasiticsBatchVsScalar:
    """``exact_effective_matrix_batch`` must be bit-identical per trial
    to ``exact_effective_matrix`` — same Schur assembly per element,
    same per-trial LAPACK sweep, same fallbacks."""

    @staticmethod
    def _stack(trials, rows, cols, seed, zero_frac=0.0):
        rng = np.random.default_rng(seed)
        g = rng.uniform(0.0, 1e-4, size=(trials, rows, cols))
        if zero_frac:
            g[rng.random(g.shape) < zero_frac] = 0.0
        return g

    @staticmethod
    def _assert_bit_identical(g, r_wire):
        batch = exact_effective_matrix_batch(g, r_wire)
        for t in range(g.shape[0]):
            scalar = exact_effective_matrix(g[t], r_wire)
            assert batch[t].tobytes() == scalar.tobytes(), f"trial {t}"
        return batch

    @pytest.mark.parametrize(
        "shape", [(5, 8, 8), (4, 6, 10), (4, 10, 6), (3, 7, 1), (3, 1, 7), (2, 1, 1)]
    )
    def test_bit_identical_across_shapes(self, shape):
        self._assert_bit_identical(self._stack(*shape, seed=3), r_wire=1.0)

    @pytest.mark.parametrize("r_wire", [0.5, 2.0])
    def test_bit_identical_across_wire_resistance(self, r_wire):
        self._assert_bit_identical(self._stack(4, 6, 6, seed=5), r_wire)

    def test_zero_cells(self):
        self._assert_bit_identical(
            self._stack(4, 6, 6, seed=7, zero_frac=0.5), r_wire=1.0
        )

    def test_r_wire_zero_returns_copy(self):
        g = self._stack(3, 4, 4, seed=9)
        out = exact_effective_matrix_batch(g, 0.0)
        assert np.array_equal(out, g)
        assert out is not g

    def test_underflow_trials_reroute_to_lu_bit_identically(self):
        """A mixed stack: normal trials take the batched Schur path,
        extreme-chain trials reroute per trial to sparse LU exactly like
        the scalar auto-dispatch (including rows > cols orientation)."""
        g = self._stack(3, 40, 20, seed=11)
        g[1] = 1e9  # log-scan underflow: the scalar engine returns None
        self._assert_bit_identical(g, r_wire=1.0)

    def test_memory_limit_dispatches_to_scalar_loop(self, monkeypatch):
        """Over-budget shapes must match the scalar engine under the
        same budget (which then auto-dispatches to sparse LU)."""
        g = self._stack(3, 8, 8, seed=13)
        monkeypatch.setattr(parasitics_module, "_SCHUR_MEMORY_LIMIT_BYTES", 64)
        self._assert_bit_identical(g, 1.0)

    def test_chunking_does_not_change_bits(self, monkeypatch):
        g = self._stack(7, 6, 6, seed=15)
        reference = exact_effective_matrix_batch(g, 1.0)
        monkeypatch.setattr(parasitics_module, "_SCHUR_BATCH_CHUNK_BYTES", 1)
        chunked = exact_effective_matrix_batch(g, 1.0)
        assert chunked.tobytes() == reference.tobytes()

    def test_validation(self):
        good = self._stack(2, 4, 4, seed=17)
        with pytest.raises(ValidationError, match="3-D"):
            exact_effective_matrix_batch(good[0], 1.0)
        with pytest.raises(ValidationError, match="non-empty"):
            exact_effective_matrix_batch(np.empty((0, 4, 4)), 1.0)
        with pytest.raises(ValidationError, match="non-finite"):
            bad = good.copy()
            bad[0, 0, 0] = np.nan
            exact_effective_matrix_batch(bad, 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            exact_effective_matrix_batch(-good, 1.0)
        with pytest.raises(ValueError, match="r_wire"):
            exact_effective_matrix_batch(good, -1.0)
