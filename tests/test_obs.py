"""Tests for ``repro.obs`` — tracing, reporting, and zero-perturbation.

The load-bearing guarantees:

- **zero perturbation** — solves are bit-identical with tracing on vs.
  off (span ids come from ``os.urandom``, no solver path branches on
  tracing state), checked against the same mixed-traffic golden record
  the serve suite uses;
- **complete span trees** — an in-process service run produces request
  → queue/prepare/execute spans plus batch spans linking members, and a
  network round trip stitches client → server → shard worker → solve
  across three processes via propagated trace context;
- **crash robustness** — a SIGKILLed worker loses only its unfinished
  spans; the server-side request spans are marked failed (not lost) and
  surviving requests still form complete trees;
- **metrics integration** — span-finish hooks feed per-stage latency
  breakdowns into :class:`~repro.serve.metrics.ServiceMetrics`, whose
  ``as_dict``/``table`` now surface every recorded counter.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ServeError
from repro.obs import report
from repro.obs import tracer as obs
from repro.serve import ServiceConfig, SolverService, run_sequential
from repro.serve.cache import CacheStats
from repro.serve.metrics import MetricsRecorder, ServiceMetrics
from repro.serve.net import NetClient, NetServer, NetServerConfig
from repro.testing.chaos import CHAOS_ENV, ChaosPlan
from repro.workloads.traffic import drive_network, mixed_traffic

#: Matches tests/test_golden_records.py: bitwise by default, 1e-10
#: tolerance when GOLDEN_STRICT=0 (foreign BLAS stacks).
STRICT = os.environ.get("GOLDEN_STRICT", "1") != "0"

GOLDEN = Path(__file__).parent / "goldens" / "serve_mixed_traffic.npz"


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Start from (and never leak) the disabled module singleton."""
    obs.disable()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# tracer core
# ----------------------------------------------------------------------


class TestTracerCore:
    def test_disabled_by_default(self):
        assert not obs.active().enabled
        span = obs.start_span("noop")
        assert span is obs.NOOP_SPAN
        assert not span.enabled
        span.set(x=1)
        span.end()
        span.fail(ValueError("x"))
        assert span.context() is None

    def test_span_lifecycle_and_record_fields(self):
        tracer = obs.configure()
        with tracer.start_span("work", attributes={"size": 8}) as span:
            span.set(extra="yes")
        records = tracer.spans()
        assert len(records) == 1
        record = records[0]
        assert record["name"] == "work"
        assert record["span_id"] == span.span_id
        assert record["trace_id"] == span.trace_id
        assert record["parent_id"] is None
        assert record["status"] == "ok"
        assert record["error"] is None
        assert record["duration_s"] == record["end_s"] - record["start_s"]
        assert record["duration_s"] >= 0.0
        assert record["attributes"] == {"size": 8, "extra": "yes"}
        assert record["pid"] == os.getpid()

    def test_explicit_parent_and_trace_context(self):
        tracer = obs.configure()
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        # propagated context (the cross-process path)
        remote = tracer.start_span("remote", trace=root.context())
        assert remote.trace_id == root.trace_id
        assert remote.parent_id == root.span_id
        child.end()
        remote.end()
        root.end()

    def test_implicit_parent_from_with_block(self):
        tracer = obs.configure()
        with tracer.start_span("outer") as outer:
            inner = tracer.start_span("inner")
            assert inner.parent_id == outer.span_id
            inner.end()
        lone = tracer.start_span("lone")
        assert lone.parent_id is None
        lone.end()

    def test_use_span_activates_without_ending(self):
        tracer = obs.configure()
        span = tracer.start_span("batch")
        with tracer.use_span(span):
            nested = tracer.start_span("kernel")
            assert nested.parent_id == span.span_id
            nested.end()
        assert not span._finished
        span.end()

    def test_exception_in_with_block_marks_error(self):
        tracer = obs.configure()
        with pytest.raises(RuntimeError):
            with tracer.start_span("doomed"):
                raise RuntimeError("boom")
        record = tracer.spans()[-1]
        assert record["status"] == "error"
        assert "RuntimeError: boom" in record["error"]

    def test_fail_and_idempotent_end(self):
        tracer = obs.configure()
        span = tracer.start_span("once")
        span.fail(ValueError("first"))
        span.end()  # second finish must not double-record
        records = tracer.spans()
        assert len(records) == 1
        assert records[0]["status"] == "error"
        assert records[0]["error"] == "ValueError: first"

    def test_record_span_retroactive(self):
        tracer = obs.configure()
        parent = tracer.start_span("req")
        tracer.record_span(
            "queue", parent=parent, start_s=1.0, end_s=3.5, attributes={"n": 2}
        )
        record = tracer.spans()[0]
        assert record["name"] == "queue"
        assert record["start_s"] == 1.0
        assert record["duration_s"] == 2.5
        assert record["parent_id"] == parent.span_id
        parent.end()

    def test_ring_capacity_bounds_memory(self):
        tracer = obs.configure(capacity=4)
        for i in range(10):
            tracer.start_span(f"s{i}").end()
        names = [r["name"] for r in tracer.spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_jsonl_file_per_pid(self, tmp_path):
        tracer = obs.configure(trace_dir=tmp_path)
        tracer.start_span("a").end()
        tracer.start_span("b").end()
        path = tmp_path / f"spans-{os.getpid()}.jsonl"
        assert path.exists()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_export_ring_buffer(self, tmp_path):
        tracer = obs.configure()
        tracer.start_span("x").end()
        out = tmp_path / "dump.jsonl"
        assert tracer.export(out) == 1
        assert json.loads(out.read_text())["name"] == "x"

    def test_finish_hooks(self):
        tracer = obs.configure()
        seen = []
        tracer.add_finish_hook(lambda record: seen.append(record["name"]))
        tracer.start_span("hooked").end()
        assert seen == ["hooked"]
        tracer.remove_finish_hook(tracer._hooks[0])
        tracer.start_span("silent").end()
        assert seen == ["hooked"]
        tracer.remove_finish_hook(lambda r: None)  # absent hook: no-op

    def test_attributes_json_coerced(self, tmp_path):
        tracer = obs.configure(trace_dir=tmp_path)
        tracer.start_span(
            "np", attributes={"f": np.float64(1.5), "a": (np.int64(2), "s")}
        ).end()
        line = (tmp_path / f"spans-{os.getpid()}.jsonl").read_text()
        attrs = json.loads(line)["attributes"]
        assert attrs == {"f": 1.5, "a": [2, "s"]}

    def test_ids_never_touch_numpy_rng(self):
        state = np.random.get_state()[1].copy()
        tracer = obs.configure()
        for _ in range(32):
            tracer.start_span("rng-free").end()
        assert np.array_equal(np.random.get_state()[1], state)

    def test_configure_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(obs.TRACE_ENV, raising=False)
        assert obs.configure_from_env() is obs.active()
        assert not obs.active().enabled
        monkeypatch.setenv(obs.TRACE_ENV, str(tmp_path))
        tracer = obs.configure_from_env()
        assert tracer.enabled
        assert tracer.trace_dir == tmp_path
        # same pid: idempotent (the tracer object is reused)
        assert obs.configure_from_env() is tracer

    def test_reset_and_disable(self):
        tracer = obs.configure()
        tracer.start_span("gone").end()
        tracer.reset()
        assert tracer.spans() == []
        obs.disable()
        assert not obs.active().enabled


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------


def _make_trace(tmp_path) -> list[dict]:
    tracer = obs.configure(trace_dir=tmp_path)
    with tracer.start_span("root", attributes={"size": 4}) as root:
        tracer.record_span(
            "fast", parent=root, start_s=root.start_s, end_s=root.start_s + 1e-9
        )
        with tracer.start_span("slow"):
            pass
    obs.disable()
    return report.read_spans(tmp_path)


class TestReport:
    def test_read_spans_skips_corrupt_lines(self, tmp_path):
        good = {"span_id": "a", "trace_id": "t", "name": "ok", "start_s": 0.0}
        (tmp_path / "spans-1.jsonl").write_text(
            json.dumps(good) + "\n" + '{"torn": tru' + "\nnot json\n"
        )
        (tmp_path / "spans-2.jsonl").write_text('{"no_span_id": 1}\n')
        spans = report.read_spans(tmp_path)
        assert [s["name"] for s in spans] == ["ok"]

    def test_build_trees_links_children(self, tmp_path):
        spans = _make_trace(tmp_path)
        roots = report.build_trees(spans)
        assert len(roots) == 1
        assert roots[0].name == "root"
        assert sorted(child.name for child in roots[0].children) == ["fast", "slow"]
        assert len(list(roots[0].walk())) == 3

    def test_orphans_promoted_to_roots(self):
        spans = [
            {"span_id": "c", "trace_id": "t", "parent_id": "dead",
             "name": "orphan", "start_s": 0.0, "end_s": 1.0, "duration_s": 1.0},
        ]
        roots = report.build_trees(spans)
        assert len(roots) == 1
        assert roots[0].name == "orphan"

    def test_summarize_counts_and_errors(self, tmp_path):
        spans = _make_trace(tmp_path)
        spans.append(
            {"span_id": "e", "trace_id": "t2", "name": "fast",
             "status": "error", "duration_s": 0.5, "start_s": 0.0, "end_s": 0.5}
        )
        stats = report.summarize(spans)
        assert stats["fast"]["count"] == 2
        assert stats["fast"]["errors"] == 1
        assert stats["root"]["count"] == 1
        assert stats["root"]["errors"] == 0
        table = report.format_summary(spans)
        assert "fast" in table and "span" in table

    def test_slowest_and_critical_path_and_render(self, tmp_path):
        spans = _make_trace(tmp_path)
        roots = report.slowest_traces(spans, limit=1)
        assert len(roots) == 1
        path = report.critical_path(roots[0])
        assert path[0].name == "root"
        assert path[-1].name == "slow"  # ended last → dominates the finish
        rendered = report.render_tree(roots[0])
        assert "root" in rendered and "slow" in rendered and "*" in rendered
        assert "size=4" in rendered

    def test_export_spans_merges_sorted(self, tmp_path):
        _make_trace(tmp_path / "trace")
        out = tmp_path / "merged.jsonl"
        count = report.export_spans(tmp_path / "trace", out)
        assert count == 3
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 3
        keys = [(r["trace_id"], r["start_s"]) for r in lines]
        assert keys == sorted(keys)


# ----------------------------------------------------------------------
# service integration (thread tier)
# ----------------------------------------------------------------------


class TestServiceTracing:
    def test_request_span_tree_and_batch_links(self, tmp_path):
        obs.configure(trace_dir=tmp_path)
        requests = mixed_traffic(12, unique_matrices=3, sizes=(12, 16), seed=9)
        with SolverService(ServiceConfig(workers=2)) as service:
            tickets = [service.submit_request(r) for r in requests]
            for ticket in tickets:
                ticket.result()
            metrics = service.metrics()
        obs.disable()
        spans = report.read_spans(tmp_path)
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["serve.request"]) == len(requests)
        # every request span owns queue + execute children
        request_ids = {s["span_id"] for s in by_name["serve.request"]}
        for stage in ("serve.queue", "serve.execute"):
            parents = {s["parent_id"] for s in by_name[stage]}
            assert parents <= request_ids
            assert len(by_name[stage]) == len(requests)
        # batch spans link their member request spans
        member_ids = set()
        for batch in by_name["serve.batch"]:
            member_ids.update(batch["attributes"]["members"])
        assert member_ids == request_ids
        # kernel spans nest under batch spans (via use_span)
        batch_ids = {s["span_id"] for s in by_name["serve.batch"]}
        assert {s["parent_id"] for s in by_name["serve.kernel"]} <= batch_ids
        # span-finish hook fed the per-stage metrics
        assert {"queue", "execute", "kernel"} <= set(metrics.stages)
        for stats in metrics.stages.values():
            assert stats["count"] >= 1
            assert stats["max_s"] >= stats["mean_s"] >= 0.0
        assert "stage queue (ms)" in metrics.table()

    def test_prepare_span_per_cache_miss(self, tmp_path):
        obs.configure(trace_dir=tmp_path)
        requests = mixed_traffic(8, unique_matrices=2, sizes=(12,), seed=3)
        with SolverService(ServiceConfig(workers=1)) as service:
            for request in requests:
                service.submit_request(request).result()
        obs.disable()
        spans = report.read_spans(tmp_path)
        prepares = [s for s in spans if s["name"] == "serve.prepare"]
        # one prepare per distinct matrix (cache hits don't re-prepare)
        assert len(prepares) == len({r.digest for r in requests})

    def test_failed_request_span_marked_error(self):
        obs.configure()
        with SolverService(ServiceConfig(workers=1)) as service:
            requests = mixed_traffic(2, unique_matrices=1, sizes=(12,), seed=1)
            service.submit_request(requests[0]).result()
        tracer = obs.active()
        with pytest.raises(Exception):
            service.submit_request(requests[1]).result()
        records = [r for r in tracer.spans() if r["name"] == "serve.request"]
        assert records[-1]["status"] == "error"
        assert "ServiceClosedError" in records[-1]["error"]

    def test_trace_dir_validation(self):
        with pytest.raises(ServeError):
            ServiceConfig(trace_dir=123)

    def test_stages_empty_without_tracing(self):
        requests = mixed_traffic(4, unique_matrices=1, sizes=(12,), seed=2)
        with SolverService(ServiceConfig(workers=1)) as service:
            for request in requests:
                service.submit_request(request).result()
            metrics = service.metrics()
        assert metrics.stages == {}


# ----------------------------------------------------------------------
# zero-perturbation: bit-identity traced vs untraced vs golden
# ----------------------------------------------------------------------


class TestZeroPerturbation:
    def test_mixed_traffic_bit_identical_traced(self, tmp_path):
        # Same workload and config as the serve_mixed_traffic golden.
        requests = mixed_traffic(24, seed=123)
        untraced, _ = run_sequential(requests, ServiceConfig())

        obs.configure(trace_dir=tmp_path)
        traced, _ = run_sequential(requests, ServiceConfig())
        with SolverService(ServiceConfig(workers=2)) as service:
            tickets = [service.submit_request(r) for r in requests]
            concurrent = [t.result() for t in tickets]
        obs.disable()

        for ref, seq, conc in zip(untraced, traced, concurrent):
            assert np.array_equal(ref.x, seq.x)
            assert np.array_equal(ref.reference, seq.reference)
            assert np.array_equal(ref.x, conc.x)
            assert np.array_equal(ref.reference, conc.reference)
        # the traced runs really did trace
        assert any(
            s["name"] == "serve.kernel" for s in report.read_spans(tmp_path)
        )

    def test_traced_run_matches_golden_record(self, tmp_path):
        if not GOLDEN.exists():  # pragma: no cover - fresh checkout
            pytest.skip("serve golden record not generated yet")
        obs.configure(trace_dir=tmp_path)
        requests = mixed_traffic(24, seed=123)
        results, _ = run_sequential(requests, ServiceConfig())
        obs.disable()
        golden = np.load(GOLDEN, allow_pickle=False)
        x = np.concatenate([r.x for r in results])
        if STRICT:
            assert np.array_equal(x, golden["x"])
        else:  # pragma: no cover - foreign BLAS stack
            assert np.max(np.abs(x - golden["x"])) < 1e-10


# ----------------------------------------------------------------------
# network integration (process tier)
# ----------------------------------------------------------------------


class TestNetTracing:
    def test_end_to_end_trace_stitches_processes(self, tmp_path):
        # 4 unique matrices so the digest → shard routing provably hits
        # both workers (2 digests can land on one shard).
        requests = mixed_traffic(8, unique_matrices=4, sizes=(12, 16), seed=11)
        service = ServiceConfig(workers=2, max_batch_size=8, trace_dir=str(tmp_path))
        with NetServer(NetServerConfig(service=service)) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                outcomes = drive_network(client, requests, max_rounds=3)
        obs.disable()
        assert not any(isinstance(o, Exception) for o in outcomes)

        spans = report.read_spans(tmp_path)
        trees = {
            root.span_id: root
            for root in report.build_trees(spans)
            if root.name == "client.request"
        }
        assert len(trees) == len(requests)
        pids = set()
        for root in trees.values():
            names = [node.name for node in root.walk()]
            # client → server → shard worker, one consistent trace id
            assert names[0] == "client.request"
            assert "server.request" in names
            assert "shard.request" in names
            assert "shard.solve" in names
            assert len({node.trace_id for node in root.walk()}) == 1
            pids.update(node.record["pid"] for node in root.walk())
        # the tree genuinely crosses process boundaries
        assert len(pids) >= 3

    def test_killed_worker_spans_failed_not_lost(self, tmp_path, monkeypatch):
        """SIGKILL a shard worker mid-storm: surviving requests' span
        trees complete; the killed shard's requests surface as *failed*
        server-side spans, never as silently missing traces."""
        plan = ChaosPlan(
            seed=3, worker_kill_rate=1.0, state_dir=str(tmp_path / "chaos")
        )
        monkeypatch.setenv(CHAOS_ENV, list(plan.chaos_env().values())[0])
        trace_dir = tmp_path / "trace"
        requests = mixed_traffic(6, unique_matrices=1, sizes=(12,), seed=4)
        service = ServiceConfig(
            workers=1,
            max_batch_size=4,
            resilience=dataclasses.replace(
                ServiceConfig().resilience, breaker_threshold=0, max_shard_restarts=10
            ),
            trace_dir=str(trace_dir),
        )
        with NetServer(NetServerConfig(service=service)) as server:
            host, port = server.address
            with NetClient(host, port, timeout_s=120.0) as client:
                outcomes = drive_network(
                    client, requests, max_rounds=8, timeout_s=120.0
                )
                metrics = client.metrics()
        obs.disable()
        monkeypatch.delenv(CHAOS_ENV)
        assert metrics.shard_crashes >= 1  # the kill genuinely landed

        spans = report.read_spans(trace_dir)
        server_spans = [s for s in spans if s["name"] == "server.request"]
        failed = [s for s in server_spans if s["status"] == "error"]
        # the killed shard's in-flight requests were marked failed...
        assert failed
        assert any("shard" in (s["error"] or "") for s in failed)
        # ...and the survivors (including retries) form complete trees
        complete = [
            root
            for root in report.build_trees(spans)
            if root.name == "client.request"
            and root.status == "ok"
            and any(node.name == "shard.solve" for node in root.walk())
        ]
        successes = sum(1 for o in outcomes if not isinstance(o, Exception))
        assert successes >= 1
        assert len(complete) >= successes


# ----------------------------------------------------------------------
# campaign integration
# ----------------------------------------------------------------------


class TestCampaignTracing:
    def test_campaign_units_parented_under_run(self, tmp_path, monkeypatch):
        from repro.campaigns import get_campaign, run_campaign

        monkeypatch.setenv(obs.TRACE_ENV, str(tmp_path / "trace"))
        spec = get_campaign("fig7-variation", quick=True)
        run_campaign(spec, tmp_path / "store", workers=0, max_units=2)
        obs.disable()
        spans = report.read_spans(tmp_path / "trace")
        runs = [s for s in spans if s["name"] == "campaign.run"]
        units = [s for s in spans if s["name"] == "campaign.unit"]
        assert len(runs) == 1
        assert len(units) == 2
        assert runs[0]["attributes"]["completed"] == 2
        for unit in units:
            assert unit["trace_id"] == runs[0]["trace_id"]
            assert unit["parent_id"] == runs[0]["span_id"]
            assert unit["attributes"]["key"]

    def test_campaign_untraced_without_env(self, tmp_path, monkeypatch):
        from repro.campaigns import get_campaign, run_campaign

        monkeypatch.delenv(obs.TRACE_ENV, raising=False)
        spec = get_campaign("fig7-variation", quick=True)
        run = run_campaign(spec, tmp_path / "store", workers=0, max_units=1)
        assert run.completed_units == 1
        assert not obs.active().enabled


# ----------------------------------------------------------------------
# metrics satellites: full-surface as_dict/table + round trip
# ----------------------------------------------------------------------


def _full_metrics() -> ServiceMetrics:
    recorder = MetricsRecorder()
    recorder.record_submit()
    recorder.record_submit()
    recorder.record_rejected()
    recorder.record_shed()
    recorder.record_deadline_miss()
    recorder.record_retry()
    recorder.record_breaker_transition()
    recorder.record_degraded()
    recorder.record_shard_crash()
    recorder.record_batch(2)
    recorder.record_prepare(0.25)
    recorder.record_stage("queue", 0.002)
    recorder.record_stage("queue", 0.004)
    recorder.record_stage("execute", 0.010)
    recorder.record_done(0.010)
    recorder.record_done(0.030, failed=True)
    return recorder.snapshot(CacheStats(hits=3, misses=2, evictions=1))


class TestMetricsSurface:
    def test_as_dict_covers_every_field(self):
        metrics = _full_metrics()
        data = metrics.as_dict()
        for field in dataclasses.fields(ServiceMetrics):
            if field.name == "cache":
                continue  # inlined as cache_* keys
            assert field.name in data, f"as_dict missing {field.name}"
        for counter in ("hits", "misses", "evictions", "hit_rate"):
            assert f"cache_{counter}" in data

    def test_round_trip_preserves_all_fields(self):
        metrics = _full_metrics()
        rebuilt = ServiceMetrics.from_dict(metrics.as_dict())
        assert rebuilt == metrics
        assert ServiceMetrics.from_json(metrics.as_json()) == metrics

    def test_round_trip_tolerates_pre_stages_payloads(self):
        data = _full_metrics().as_dict()
        data.pop("stages")
        rebuilt = ServiceMetrics.from_dict(data)
        assert rebuilt.stages == {}

    def test_table_shows_every_counter(self):
        metrics = _full_metrics()
        table = metrics.table()
        for label in (
            "requests completed", "requests failed", "requests rejected",
            "requests shed", "deadline misses", "isolation retries",
            "breaker transitions", "degraded (fallback)", "shard crashes",
            "throughput (solve/s)", "latency p50 (ms)", "latency p95 (ms)",
            "latency p99 (ms)", "latency mean (ms)", "latency max (ms)",
            "wall clock (s)", "batches executed", "mean batch size",
            "batch-size histogram", "cache hit rate", "prepare time (s)",
            "stage queue (ms)", "stage execute (ms)",
        ):
            assert label in table, f"table missing {label}"

    def test_stage_snapshot_stats(self):
        metrics = _full_metrics()
        queue = metrics.stages["queue"]
        assert queue["count"] == 2
        assert queue["total_s"] == pytest.approx(0.006)
        assert queue["mean_s"] == pytest.approx(0.003)
        assert queue["max_s"] == pytest.approx(0.004)
