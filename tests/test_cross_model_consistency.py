"""Cross-model consistency: independent models must agree.

The repository implements most physical effects twice (fast algebraic
model + first-principles simulation). These tests pin the agreements
that make the fast paths trustworthy:

- transient equilibrium == DC operating point == algebraic op output;
- AC response at ~0 Hz == DC solve;
- analytic settling model brackets the simulated settling;
- sensitivity prediction tracks solver Monte-Carlo;
- scheduler latency == sum of its parts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amc.config import HardwareConfig, OpAmpConfig
from repro.amc.ops import AMCOperations
from repro.circuits.ac import single_pole_gain, solve_ac
from repro.circuits.generators import build_inv_circuit
from repro.circuits.mna import solve_dc
from repro.circuits.transient import simulate_inv_transient, simulate_mvm_transient
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import normalize_matrix
from repro.workloads.matrices import (
    diagonally_dominant_matrix,
    random_vector,
    wishart_matrix,
)


def _array(n=5, seed=0):
    matrix, _ = normalize_matrix(diagonally_dominant_matrix(n, np.random.default_rng(seed)))
    return CrossbarArray.program(matrix, rng=seed, pre_normalized=True), matrix


class TestTransientVsAlgebraic:
    @given(seed=st.integers(0, 2**31), gain=st.sampled_from([1e3, 1e4, 1e5]))
    @settings(max_examples=10, deadline=None)
    def test_inv_equilibrium_matches_op_model(self, seed, gain):
        array, _ = _array(seed=seed % 100)
        v = random_vector(5, rng=seed) * 0.3
        config = HardwareConfig(
            opamp=OpAmpConfig(open_loop_gain=gain, input_offset_sigma_v=0.0)
        )
        algebraic = AMCOperations(config).inv(array, v).output
        transient = simulate_inv_transient(array, v, open_loop_gain=gain)
        assert transient.stable
        np.testing.assert_allclose(transient.final, algebraic, rtol=1e-8, atol=1e-12)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_mvm_equilibrium_matches_op_model(self, seed):
        array, _ = _array(seed=seed % 100)
        v = random_vector(5, rng=seed) * 0.3
        config = HardwareConfig(
            opamp=OpAmpConfig(open_loop_gain=1e4, input_offset_sigma_v=0.0)
        )
        algebraic = AMCOperations(config).mvm(array, v).output
        transient = simulate_mvm_transient(array, v, open_loop_gain=1e4)
        np.testing.assert_allclose(transient.final, algebraic, rtol=1e-9, atol=1e-12)


class TestACVsDC:
    def test_low_frequency_ac_matches_dc(self):
        array, _ = _array(seed=3)
        v = random_vector(5, rng=4) * 0.3
        gain = 1e4
        circuit, outputs = build_inv_circuit(
            array.g_pos, array.g_neg, v, g_input=array.g_unit, opamp_gain=gain
        )
        dc = solve_dc(circuit).voltages(outputs)
        ac_circuit, outputs = build_inv_circuit(
            array.g_pos,
            array.g_neg,
            v,
            g_input=array.g_unit,
            opamp_gain=single_pole_gain(gain, 100e6, 1.0),
        )
        ac = solve_ac(ac_circuit, 1.0).voltages(outputs)
        np.testing.assert_allclose(ac.real, dc, rtol=1e-4)
        assert np.max(np.abs(ac.imag)) < 1e-3


class TestSettlingModels:
    def test_analytic_brackets_simulated(self):
        """The first-order settling formula and the exact transient agree
        within an order of magnitude across gains and sizes."""
        from repro.circuits.dynamics import inv_settling_time

        for n, seed in ((4, 0), (8, 1), (16, 2)):
            matrix, _ = normalize_matrix(wishart_matrix(n, rng=seed))
            array = CrossbarArray.program(matrix, rng=seed, pre_normalized=True)
            v = random_vector(n, rng=seed) * 0.2
            simulated = simulate_inv_transient(
                array, v, open_loop_gain=1e4, gbwp_hz=100e6, epsilon=1e-4
            )
            analytic = inv_settling_time(matrix, 100e6, epsilon=1e-4)
            assert analytic / 30 < simulated.settling_time_s < analytic * 30


class TestSensitivityVsSolver:
    def test_prediction_orders_workloads_correctly(self):
        """A workload predicted to be twice as sensitive really does
        produce larger solver errors."""
        from repro.analysis.sensitivity import predicted_variation_error
        from repro.core.original import OriginalAMCSolver

        easy = wishart_matrix(12, rng=0, aspect=8.0)
        hard = wishart_matrix(12, rng=0, aspect=1.3)
        b = random_vector(12, rng=1)

        def measure(matrix):
            solver = OriginalAMCSolver(HardwareConfig.paper_variation())
            errors = [solver.solve(matrix, b, rng=t).relative_error for t in range(10)]
            return float(np.median(errors))

        def predict(matrix):
            normalized, scale = normalize_matrix(matrix)
            return predicted_variation_error(normalized, b / scale, 0.05)

        assert predict(hard) > predict(easy)
        assert measure(hard) > measure(easy)


class TestSchedulerArithmetic:
    @given(
        n_ops=st.integers(1, 6),
        t_op=st.floats(min_value=1e-8, max_value=1e-5),
        t_conv=st.floats(min_value=0.0, max_value=1e-6),
    )
    @settings(max_examples=25, deadline=None)
    def test_single_problem_latency_is_sum_of_parts(self, n_ops, t_op, t_conv):
        from repro.amc.scheduler import simulate_schedule

        result = simulate_schedule(
            [t_op] * n_ops, t_dac=t_conv, t_adc=t_conv, t_snh=0.0, n_problems=1
        )
        expected = 2 * t_conv + n_ops * t_op
        assert result.latency_first == pytest.approx(expected, rel=1e-9)

    @given(batch=st.integers(1, 12))
    @settings(max_examples=15, deadline=None)
    def test_makespan_monotone_in_batch(self, batch):
        from repro.amc.scheduler import simulate_schedule

        small = simulate_schedule(
            [1e-6] * 5, t_dac=1e-7, t_adc=1e-7, t_snh=1e-8, n_problems=batch
        )
        large = simulate_schedule(
            [1e-6] * 5, t_dac=1e-7, t_adc=1e-7, t_snh=1e-8, n_problems=batch + 1
        )
        assert large.makespan > small.makespan
