"""Tests for the ASCII table formatter."""

import pytest

from repro.analysis.reporting import format_table
from repro.errors import ValidationError


class TestFormatTable:
    def test_basic_layout(self):
        table = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "a" in lines[0] and "b" in lines[0]

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        table = format_table(["col", "other"], [["x", "y"]])
        header, _, row = table.splitlines()
        assert header.index("|") == row.index("|")

    def test_float_formatting(self):
        table = format_table(["v"], [[0.000123456]])
        assert "1.235e-04" in table

    def test_compact_float(self):
        table = format_table(["v"], [[3.14159]])
        assert "3.142" in table

    def test_zero(self):
        assert "0" in format_table(["v"], [[0.0]])

    def test_empty_rows_ok(self):
        table = format_table(["a"], [])
        assert "a" in table

    def test_row_length_mismatch(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValidationError):
            format_table([], [])
