"""Tests for the one-stage BlockAMC macro (five-step schedule, Fig. 4)."""

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.amc.macro import BlockAMCMacro, MacroArrays
from repro.core.partition import PartitionSpec, build_macro_arrays, prepare_blocks
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import normalize_matrix
from repro.errors import SolverError
from repro.workloads.matrices import diagonally_dominant_matrix, random_vector, wishart_matrix


def _macro(matrix, config=None, split=None, rng=0):
    normalized, scale = normalize_matrix(matrix)
    blocks = prepare_blocks(normalized, PartitionSpec(split))
    arrays = build_macro_arrays(blocks, config or HardwareConfig.ideal(), rng)
    return BlockAMCMacro(arrays, config or HardwareConfig.ideal()), normalized, blocks


class TestMacroArraysValidation:
    def test_a1_must_be_square(self):
        a = CrossbarArray.program(np.ones((2, 3)) * 0.1, rng=0, pre_normalized=True)
        sq = CrossbarArray.program(np.eye(3) * 0.5, rng=0, pre_normalized=True)
        with pytest.raises(SolverError):
            MacroArrays(a1=a, a2=a, a3=a, a4s=sq)

    def test_block_shape_consistency(self):
        a1 = CrossbarArray.program(np.eye(2) * 0.5, rng=0, pre_normalized=True)
        a4 = CrossbarArray.program(np.eye(3) * 0.5, rng=0, pre_normalized=True)
        a2_bad = CrossbarArray.program(np.ones((3, 3)) * 0.1, rng=0, pre_normalized=True)
        a3_good = CrossbarArray.program(np.ones((3, 2)) * 0.1, rng=0, pre_normalized=True)
        with pytest.raises(SolverError, match="A2"):
            MacroArrays(a1=a1, a2=a2_bad, a3=a3_good, a4s=a4)

    def test_invalid_schur_scale(self):
        a1 = CrossbarArray.program(np.eye(2) * 0.5, rng=0, pre_normalized=True)
        a2 = CrossbarArray.program(np.ones((2, 2)) * 0.1, rng=0, pre_normalized=True)
        with pytest.raises(SolverError, match="schur_input_scale"):
            MacroArrays(a1=a1, a2=a2, a3=a2, a4s=a1, schur_input_scale=0.0)

    def test_sizes(self):
        macro, _, _ = _macro(wishart_matrix(6, rng=0))
        assert macro.arrays.size == 6
        assert macro.arrays.upper_size == 3
        assert macro.arrays.lower_size == 3


class TestFiveStepAlgorithm:
    def test_solves_system_exactly_with_ideal_hardware(self):
        matrix = wishart_matrix(8, rng=1)
        macro, normalized, _ = _macro(matrix)
        b = random_vector(8, rng=2) * 0.4
        result = macro.solve(b[:4], b[4:], rng=3)
        expected = np.linalg.solve(normalized, b)
        np.testing.assert_allclose(result.solution, expected, rtol=1e-9, atol=1e-11)

    def test_step_signs_follow_paper(self):
        """step1 = -y_t, step2 = +g_t, step3 = z, step4 = -f_t, step5 = -y."""
        matrix = diagonally_dominant_matrix(6, np.random.default_rng(4))
        macro, normalized, blocks = _macro(matrix)
        b = random_vector(6, rng=5) * 0.3
        f, g = b[:3], b[3:]
        result = macro.solve(f, g, rng=6)

        y_t = np.linalg.solve(blocks.a1, f)
        g_t = blocks.a3 @ y_t
        z = np.linalg.solve(blocks.a4s, g - g_t)
        f_t = blocks.a2 @ z
        y = np.linalg.solve(blocks.a1, f - f_t)

        outputs = {s.label: s.output for s in result.steps}
        np.testing.assert_allclose(outputs["step1:INV(A1)"], -y_t, atol=1e-10)
        np.testing.assert_allclose(outputs["step2:MVM(A3)"], g_t, atol=1e-10)
        np.testing.assert_allclose(outputs["step3:INV(A4s)"], z, atol=1e-10)
        np.testing.assert_allclose(outputs["step4:MVM(A2)"], -f_t, atol=1e-10)
        np.testing.assert_allclose(outputs["step5:INV(A1)"], -y, atol=1e-10)

    def test_reference_steps_match_actual_for_ideal_hardware(self):
        matrix = wishart_matrix(6, rng=7)
        macro, _, _ = _macro(matrix)
        b = random_vector(6, rng=8) * 0.3
        result = macro.solve(b[:3], b[3:], rng=9)
        for step, reference in result.reference_steps.items():
            actual = next(s.output for s in result.steps if s.label.startswith(step))
            np.testing.assert_allclose(actual, reference, atol=1e-9)

    def test_asymmetric_split(self):
        matrix = wishart_matrix(7, rng=10)
        macro, normalized, _ = _macro(matrix, split=2)
        b = random_vector(7, rng=11) * 0.3
        result = macro.solve(b[:2], b[2:], rng=12)
        np.testing.assert_allclose(
            result.solution, np.linalg.solve(normalized, b), rtol=1e-8, atol=1e-10
        )

    def test_schur_scale_compensated(self):
        """A matrix whose Schur complement exceeds 1 must still solve."""
        matrix = np.array(
            [
                [0.2, 0.0, 0.9, 0.0],
                [0.0, 0.2, 0.0, 0.9],
                [-0.9, 0.0, 0.3, 0.0],
                [0.0, -0.9, 0.0, 0.3],
            ]
        )
        _, scale = normalize_matrix(matrix)
        blocks = prepare_blocks(matrix / scale, PartitionSpec())
        assert blocks.schur_scale > 1.0
        macro, normalized, _ = _macro(matrix)
        b = np.array([0.1, -0.2, 0.3, 0.15])
        result = macro.solve(b[:2], b[2:], rng=0)
        np.testing.assert_allclose(
            result.solution, np.linalg.solve(normalized, b), rtol=1e-9, atol=1e-11
        )


class TestTelemetryAndResources:
    def test_five_steps_recorded(self):
        macro, _, _ = _macro(wishart_matrix(6, rng=13))
        result = macro.solve(np.full(3, 0.2), np.full(3, 0.1), rng=14)
        assert len(result.steps) == 5
        kinds = [s.kind for s in result.steps]
        assert kinds == ["inv", "mvm", "inv", "mvm", "inv"]

    def test_opa_count_is_half_for_even_split(self):
        macro, _, _ = _macro(wishart_matrix(8, rng=15))
        assert macro.opa_count == 4
        assert macro.dac_count == 4
        assert macro.adc_count == 4

    def test_device_count(self):
        macro, _, _ = _macro(wishart_matrix(8, rng=16))
        # four 4x4 block pairs = 4 * 2 * 16 cells
        assert macro.device_count == 128

    def test_analog_time_positive(self):
        macro, _, _ = _macro(wishart_matrix(6, rng=17))
        result = macro.solve(np.full(3, 0.2), np.full(3, 0.1), rng=18)
        assert result.analog_time_s > 0.0

    def test_input_size_validated(self):
        macro, _, _ = _macro(wishart_matrix(6, rng=19))
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            macro.solve(np.zeros(2), np.zeros(3))
