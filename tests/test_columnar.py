"""Unit tests for the columnar (struct-of-arrays) netlist container.

The bit-identity contract against the object netlist lives in
``tests/test_kernel_equivalence.py``; this file covers the container's
own behavior — interning, validation, and the assembly entry points.
"""

import numpy as np
import pytest

from repro.circuits.columnar import ColumnarCircuit, assemble_columnar_mna
from repro.circuits.mna import assemble_mna, solve_dc
from repro.circuits.netlist import GROUND_NAMES, Circuit
from repro.errors import CircuitError


class TestNodeInterning:
    def test_ground_aliases_intern_to_minus_one(self):
        c = ColumnarCircuit()
        ids = c.node_ids(list(GROUND_NAMES))
        assert ids.tolist() == [-1, -1, -1]
        assert c.nodes() == []

    def test_interning_is_idempotent(self):
        c = ColumnarCircuit()
        first = c.node_ids(["a", "b", "a"])
        again = c.node_ids(["a", "b", "a"])
        assert first.tolist() == again.tolist() == [0, 1, 0]

    def test_mixed_known_and_fresh_names(self):
        c = ColumnarCircuit()
        c.node_ids(["a"])
        ids = c.node_ids(["b", "a", "gnd", "c"])
        assert ids.tolist() == [1, 0, -1, 2]

    def test_id_arrays_pass_through(self):
        c = ColumnarCircuit()
        ids = c.node_ids(["a", "b"])
        c.resistors(ids, np.full(2, -1, dtype=np.intp), [1.0, 2.0])
        assert len(c) == 2

    def test_out_of_range_id_rejected(self):
        c = ColumnarCircuit()
        c.node_ids(["a"])
        with pytest.raises(CircuitError, match="out of range"):
            c.resistors(
                np.array([5], dtype=np.intp), np.array([-1], dtype=np.intp), [1.0]
            )

    def test_empty_node_name_rejected(self):
        c = ColumnarCircuit()
        with pytest.raises(CircuitError, match="non-empty"):
            c.node_ids([""])

    def test_nodes_sorted_excluding_ground(self):
        c = ColumnarCircuit()
        c.resistors(["b", "a"], ["gnd", "b"], [1.0, 1.0])
        assert c.nodes() == ["a", "b"]


class TestBulkAppenders:
    def test_nonpositive_resistance_rejected(self):
        c = ColumnarCircuit()
        with pytest.raises(CircuitError, match="resistance"):
            c.resistors(["a"], ["0"], [0.0])

    def test_nonpositive_conductance_rejected(self):
        c = ColumnarCircuit()
        with pytest.raises(CircuitError, match="conductance"):
            c.conductors(["a"], ["0"], [-1.0])

    def test_conductors_store_double_reciprocal(self):
        """Same resistance representation as ``Circuit.conductor``."""
        g = 3.0e-5
        obj = Circuit()
        obj.conductor("a", "0", g, name="G1")
        col = ColumnarCircuit()
        col.conductors(["a"], ["0"], [g], ["G1"])
        stamped = col._kind_arrays("R")["value"][0]
        assert stamped == obj.elements[0].resistance

    def test_length_mismatch_rejected(self):
        c = ColumnarCircuit()
        with pytest.raises(CircuitError, match="lengths"):
            c.resistors(["a", "b"], ["0"], [1.0, 1.0])

    def test_names_length_mismatch_rejected(self):
        c = ColumnarCircuit()
        with pytest.raises(CircuitError, match="lengths"):
            c.resistors(["a"], ["0"], [1.0], ["R1", "R2"])

    def test_duplicate_names_within_run_rejected(self):
        c = ColumnarCircuit()
        with pytest.raises(CircuitError, match="duplicate"):
            c.resistors(["a", "b"], ["0", "0"], [1.0, 1.0], ["R1", "R1"])

    def test_duplicate_name_across_runs_rejected(self):
        c = ColumnarCircuit()
        c.resistors(["a"], ["0"], [1.0], ["R1"])
        with pytest.raises(CircuitError, match="duplicate"):
            c.vsources(["a"], ["0"], [1.0], ["R1"])

    @pytest.mark.parametrize("kind", ["vsources", "isources", "inductors"])
    def test_branch_and_source_kinds_require_names(self, kind):
        c = ColumnarCircuit()
        with pytest.raises(TypeError):
            getattr(c, kind)(["a"], ["0"], [1.0])

    def test_unnamed_resistors_allowed(self):
        c = ColumnarCircuit()
        c.resistors(["a"], ["0"], [1.0])
        assert len(c) == 1

    def test_opamp_length_mismatch_rejected(self):
        c = ColumnarCircuit()
        with pytest.raises(CircuitError, match="lengths"):
            c.opamps(["i1"], ["0", "0"], ["o1"], ["U1"])

    def test_vcvs_complex_gain_rejected(self):
        c = ColumnarCircuit()
        with pytest.raises(CircuitError, match="real"):
            c.vcvs(["o"], ["0"], ["x"], ["y"], [1.0 + 2.0j], ["E1"])

    def test_vcvs_length_mismatch_rejected(self):
        c = ColumnarCircuit()
        with pytest.raises(CircuitError, match="lengths"):
            c.vcvs(["o"], ["0"], ["x"], ["y"], [1.0, 2.0], ["E1", "E2"])


class TestAssembly:
    @staticmethod
    def _reference_pair():
        obj = Circuit("ref")
        obj.vsource("in", "0", 2.0, name="V1")
        obj.resistor("in", "mid", 10.0, name="R1")
        obj.resistor("mid", "0", 10.0, name="R2")
        obj.isource("0", "mid", 0.01, name="I1")
        obj.capacitor("mid", "0", 1e-12, name="C1")
        obj.inductor("mid", "tap", 1e-9, name="L1")
        obj.resistor("tap", "0", 5.0, name="R3")
        obj.vcvs("amp", "0", "mid", "0", 4.0, name="E1")
        obj.resistor("amp", "0", 100.0, name="R4")
        obj.opamp("fb", "0", "buf", name="U1")
        obj.resistor("buf", "fb", 1.0, name="R5")
        obj.resistor("fb", "mid", 1.0, name="R6")
        return obj, ColumnarCircuit.from_circuit(obj)

    def test_from_circuit_assembles_identical_system(self):
        obj, col = self._reference_pair()
        ref = assemble_mna(obj)
        new = assemble_columnar_mna(col)
        assert new.node_index == ref.node_index
        assert new.branch_index == ref.branch_index
        assert new.dense == ref.dense
        assert np.array_equal(new.matrix, ref.matrix)
        assert new._source_rows == ref._source_rows
        assert new._base_values == ref._base_values

    def test_solve_dc_matches_object_path(self):
        obj, col = self._reference_pair()
        ref = solve_dc(obj)
        new = solve_dc(col)
        for node in obj.nodes():
            assert new.voltage(node) == ref.voltage(node)
        for name in ("V1", "E1", "U1", "L1"):
            assert new.current(name) == ref.current(name)

    def test_resistor_stamp_matches_reference(self):
        obj, col = self._reference_pair()
        ref = solve_dc(obj)
        new = solve_dc(col)
        assert np.array_equal(new.resistor_power(), ref.resistor_power())

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError, match="empty"):
            assemble_columnar_mna(ColumnarCircuit())

    def test_all_grounded_rejected(self):
        c = ColumnarCircuit()
        c.resistors(["gnd"], ["0"], [1.0])
        with pytest.raises(CircuitError, match="unknowns"):
            assemble_columnar_mna(c)

    def test_assemble_method_delegates(self):
        _, col = self._reference_pair()
        direct = assemble_columnar_mna(col)
        via_method = assemble_mna(col)
        assert np.array_equal(direct.matrix, via_method.matrix)

    def test_resistor_stamp_empty_circuit(self):
        c = ColumnarCircuit()
        idx_a, idx_b, g = c.resistor_stamp({})
        assert idx_a.size == idx_b.size == g.size == 0
