"""Tests for the one-stage BlockAMC solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amc.config import HardwareConfig
from repro.core.blockamc import BlockAMCSolver
from repro.core.partition import PartitionSpec
from repro.errors import ValidationError
from repro.workloads.matrices import (
    diagonally_dominant_matrix,
    random_vector,
    wishart_matrix,
)


class TestIdealExactness:
    def test_matches_numpy_solve(self):
        matrix = wishart_matrix(8, rng=0)
        b = random_vector(8, rng=1)
        result = BlockAMCSolver(HardwareConfig.ideal()).solve(matrix, b, rng=2)
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-8, atol=1e-10)
        assert result.relative_error < 1e-8

    @given(
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_exact_for_any_dominant_system(self, n, seed):
        rng = np.random.default_rng(seed)
        matrix = diagonally_dominant_matrix(n, rng)
        b = random_vector(n, rng)
        result = BlockAMCSolver(HardwareConfig.ideal()).solve(matrix, b, rng=seed)
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-7, atol=1e-9)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_property_every_split_works(self, data):
        n = data.draw(st.integers(min_value=3, max_value=10))
        split = data.draw(st.integers(min_value=1, max_value=n - 1))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        matrix = diagonally_dominant_matrix(n, rng)
        b = random_vector(n, rng)
        solver = BlockAMCSolver(HardwareConfig.ideal(), PartitionSpec(split))
        result = solver.solve(matrix, b, rng=seed)
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-7, atol=1e-9)

    def test_odd_size(self):
        matrix = wishart_matrix(7, rng=3)
        b = random_vector(7, rng=4)
        result = BlockAMCSolver(HardwareConfig.ideal()).solve(matrix, b, rng=5)
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-8, atol=1e-10)

    def test_unnormalized_matrix_and_large_b(self):
        """Scaling of A and b is undone exactly."""
        matrix = 1e3 * wishart_matrix(6, rng=6)
        b = 1e4 * random_vector(6, rng=7)
        result = BlockAMCSolver(HardwareConfig.ideal()).solve(matrix, b, rng=8)
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-8)


class TestPreparedReuse:
    def test_prepare_once_solve_many(self):
        matrix = wishart_matrix(8, rng=9)
        solver = BlockAMCSolver(HardwareConfig.paper_variation())
        prepared = solver.prepare(matrix, rng=10)
        r1 = prepared.solve(random_vector(8, rng=11), rng=12)
        r2 = prepared.solve(random_vector(8, rng=13), rng=14)
        assert r1.x.shape == r2.x.shape
        # Same programmed arrays: errors correlated but inputs differ.
        assert not np.allclose(r1.x, r2.x)

    def test_same_seed_reproducible(self):
        matrix = wishart_matrix(8, rng=15)
        b = random_vector(8, rng=16)
        solver = BlockAMCSolver(HardwareConfig.paper_variation())
        a = solver.solve(matrix, b, rng=17)
        c = solver.solve(matrix, b, rng=17)
        np.testing.assert_array_equal(a.x, c.x)


class TestMetadataAndTelemetry:
    def test_five_operations(self):
        matrix = wishart_matrix(8, rng=18)
        result = BlockAMCSolver(HardwareConfig.ideal()).solve(
            matrix, random_vector(8, rng=19), rng=20
        )
        assert result.operation_counts == {"inv": 3, "mvm": 2}

    def test_metadata_fields(self):
        matrix = wishart_matrix(8, rng=21)
        result = BlockAMCSolver(HardwareConfig.ideal()).solve(
            matrix, random_vector(8, rng=22), rng=23
        )
        md = result.metadata
        assert md["split"] == 4
        assert md["opa_count"] == 4
        assert md["device_count"] == 128
        assert "reference_steps" in md
        assert set(md["step_outputs"]) == {
            "step1:INV(A1)",
            "step2:MVM(A3)",
            "step3:INV(A4s)",
            "step4:MVM(A2)",
            "step5:INV(A1)",
        }

    def test_solver_name(self):
        matrix = wishart_matrix(4, rng=24)
        result = BlockAMCSolver(HardwareConfig.ideal()).solve(
            matrix, random_vector(4, rng=25), rng=26
        )
        assert result.solver == "blockamc-1stage"


class TestGainRanging:
    def test_ill_conditioned_system_stays_in_range(self):
        """Without ranging the INV outputs would clip at the converters."""
        rng = np.random.default_rng(27)
        # Small eigenvalue => solution much larger than the input.
        matrix = wishart_matrix(8, rng, aspect=1.05)
        b = random_vector(8, rng)
        result = BlockAMCSolver(HardwareConfig.paper_ideal_mapping()).solve(
            matrix, b, rng=28
        )
        assert result.relative_error < 0.2

    def test_input_scale_recorded(self):
        matrix = wishart_matrix(8, rng=29)
        result = BlockAMCSolver(HardwareConfig.ideal()).solve(
            matrix, random_vector(8, rng=30), rng=31
        )
        assert result.metadata["input_scale"] > 0.0


class TestInputValidation:
    def test_zero_b_rejected(self):
        matrix = wishart_matrix(4, rng=32)
        with pytest.raises(ValidationError):
            BlockAMCSolver(HardwareConfig.ideal()).solve(matrix, np.zeros(4), rng=33)

    def test_wrong_b_size_rejected(self):
        matrix = wishart_matrix(4, rng=34)
        with pytest.raises(ValidationError):
            BlockAMCSolver(HardwareConfig.ideal()).solve(matrix, np.ones(5), rng=35)

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            BlockAMCSolver(HardwareConfig.ideal()).solve(np.ones((3, 4)), np.ones(3))
