"""Tests for the serving failure story (``repro.serve.resilience``).

The load-bearing guarantees:

- **typed, classified failures** — every fault surfaces as a
  :class:`~repro.errors.ReproError` subclass with a ``retryable`` flag;
- **deadlines** — a request whose deadline expires while queued fails
  fast with :class:`~repro.errors.DeadlineExceededError` instead of
  occupying a batch slot;
- **load shedding** — a submit whose estimated wait exceeds the
  threshold is refused with a retry-after hint;
- **circuit breakers** — a prepared solver that keeps failing stops
  occupying its shard, its cached entry is invalidated on trip, and the
  half-open probe re-prepares;
- **blast-radius isolation** — one poisoned request in a coalesced
  batch fails alone; every surviving result is bit-identical to the
  sequential reference;
- **degradation ladder** — ``fallback="digital"`` answers analog
  failures with the digital reference solve, tagged ``degraded``;
- **crash-proof workers** — a ``BaseException`` escaping a batch fails
  only the in-flight tickets, the shard restarts (bounded), and a
  crashed-out shard fails fast instead of hanging;
- **no hung tickets** — ``close(wait=False)`` under a deep backlog and
  ``solve_all`` hitting a mid-list rejection both resolve every ticket.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardFailedError,
    SolverError,
    ValidationError,
)
from repro.serve import (
    SOLVER_KINDS,
    CircuitBreaker,
    ResiliencePolicy,
    ServiceConfig,
    SolveRequest,
    SolverService,
    digital_fallback,
    run_sequential,
)
from repro.testing import ChaosPlan, chaos_entry_transform, rhs_tag
from repro.workloads.matrices import random_vector, wishart_matrix
from repro.workloads.traffic import mixed_traffic


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def _identical(a, b) -> bool:
    return np.array_equal(a.x, b.x) and a.relative_error == b.relative_error


@pytest.fixture
def slow_kind():
    """A solver kind whose prepare blocks until released (deterministic
    way to wedge a worker while tickets pile up behind it)."""
    started = threading.Event()
    release = threading.Event()

    class _SlowPrepared:
        def __init__(self, n):
            self.n = n

        def solve(self, b, rng=None):
            class _R:
                x = np.zeros(self.n)
                relative_error = 0.0
            return _R()

    class _SlowSolver:
        def __init__(self, config):
            pass

        def prepare(self, matrix, rng=None):
            started.set()
            assert release.wait(timeout=30)
            return _SlowPrepared(matrix.shape[0])

    SOLVER_KINDS["slow-test"] = lambda config: _SlowSolver(config)
    try:
        yield started, release
    finally:
        release.set()
        SOLVER_KINDS.pop("slow-test", None)


@pytest.fixture
def flaky_kind():
    """A solver kind whose solves fail while the flag is set (prepare and
    the warm-up solve succeed whenever the flag is clear)."""
    fail = threading.Event()

    class _FlakyPrepared:
        def __init__(self, n):
            self.n = n

        def solve(self, b, rng=None):
            if fail.is_set():
                raise SolverError("flaky-test: injected solve failure")

            class _R:
                x = np.zeros(self.n)
                relative_error = 0.0
            return _R()

    class _FlakySolver:
        def __init__(self, config):
            pass

        def prepare(self, matrix, rng=None):
            if fail.is_set():
                raise SolverError("flaky-test: injected prepare failure")
            return _FlakyPrepared(matrix.shape[0])

    SOLVER_KINDS["flaky-test"] = lambda config: _FlakySolver(config)
    try:
        yield fail
    finally:
        SOLVER_KINDS.pop("flaky-test", None)


# ----------------------------------------------------------------------
# policy and breaker units
# ----------------------------------------------------------------------


class TestResiliencePolicy:
    def test_defaults_valid(self):
        policy = ResiliencePolicy()
        assert policy.deadline_s is None
        assert policy.fallback == "none"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"shed_latency_s": 0.0},
            {"breaker_threshold": -1},
            {"breaker_reset_s": 0.0},
            {"fallback": "prayer"},
            {"max_shard_restarts": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ServeError):
            ResiliencePolicy(**kwargs)

    def test_config_rejects_non_policy(self):
        with pytest.raises(ServeError):
            ServiceConfig(resilience="none")
        with pytest.raises(ServeError):
            ServiceConfig(entry_transform="not-callable")


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(3, 1.0, clock=_FakeClock())
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow() and not breaker.is_open()

    def test_trips_at_threshold(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(3, 1.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.record_failure()  # the trip
        assert breaker.state == "open"
        assert breaker.is_open() and not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(1.0)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(3, 1.0, clock=_FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(1, 2.0, clock=clock)
        assert breaker.record_failure()
        clock.t = 2.5
        assert not breaker.is_open()  # reset window elapsed
        assert breaker.allow()  # admits the probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(1, 2.0, clock=clock)
        breaker.record_failure()
        clock.t = 2.5
        assert breaker.allow()
        assert breaker.record_failure()  # probe failed: re-trip
        assert breaker.state == "open"
        # The reset clock restarted at the re-trip.
        assert breaker.retry_after_s() == pytest.approx(2.0)
        clock.t = 4.0
        assert not breaker.allow()
        clock.t = 4.6
        assert breaker.allow()

    def test_transitions_counted(self):
        clock = _FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            1, 1.0, clock=clock, on_transition=lambda: transitions.append(1)
        )
        breaker.record_failure()  # closed -> open
        clock.t = 1.5
        breaker.allow()  # open -> half_open
        breaker.record_success()  # half_open -> closed
        assert len(transitions) == 3

    def test_validation(self):
        with pytest.raises(ServeError):
            CircuitBreaker(0, 1.0)
        with pytest.raises(ServeError):
            CircuitBreaker(1, 0.0)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_request_deadline_validation(self):
        matrix = wishart_matrix(8, rng=0)
        with pytest.raises(ValidationError):
            SolveRequest(matrix=matrix, b=np.ones(8), deadline_s=0.0)
        with pytest.raises(ValidationError):
            SolveRequest(matrix=matrix, b=np.ones(8), deadline_s=-1.0)

    def test_expired_request_fails_fast(self, slow_kind):
        started, release = slow_kind
        config = ServiceConfig(workers=1, max_linger_s=0.0)
        with SolverService(config) as service:
            blocker = service.submit(
                wishart_matrix(8, rng=0), np.ones(8), solver="slow-test"
            )
            assert started.wait(timeout=30)
            doomed = service.submit(
                wishart_matrix(8, rng=1), np.ones(8), deadline_s=0.001
            )
            time.sleep(0.05)  # let the deadline expire while queued
            release.set()
            assert isinstance(doomed.exception(timeout=30), DeadlineExceededError)
            blocker.result(timeout=30)
            metrics = service.metrics()
        assert metrics.deadline_misses == 1
        assert metrics.requests_failed >= 1

    def test_policy_default_deadline_applies(self, slow_kind):
        started, release = slow_kind
        config = ServiceConfig(
            workers=1,
            max_linger_s=0.0,
            resilience=ResiliencePolicy(deadline_s=0.001),
        )
        with SolverService(config) as service:
            # The blocker's generous per-request deadline overrides the
            # policy default; the defaulted request expires behind it.
            blocker = service.submit(
                wishart_matrix(8, rng=0), np.ones(8),
                solver="slow-test", deadline_s=60.0,
            )
            assert started.wait(timeout=30)
            doomed = service.submit(wishart_matrix(8, rng=1), np.ones(8))
            assert doomed.deadline_s == 0.001
            assert blocker.deadline_s == 60.0
            time.sleep(0.05)
            release.set()
            assert isinstance(doomed.exception(timeout=30), DeadlineExceededError)
            blocker.result(timeout=30)

    def test_generous_deadline_does_not_interfere(self):
        requests = mixed_traffic(
            8, unique_matrices=2, sizes=(8, 12), deadline_s=60.0, seed=4
        )
        reference, _ = run_sequential(requests, ServiceConfig(workers=1))
        with SolverService(ServiceConfig(workers=2)) as service:
            results = service.solve_all(requests)
            metrics = service.metrics()
        for a, b in zip(reference, results):
            assert _identical(a, b)
        assert metrics.deadline_misses == 0

    def test_deadlined_traffic_same_bits_as_plain(self):
        plain = mixed_traffic(6, unique_matrices=2, sizes=(8,), seed=9)
        deadlined = mixed_traffic(
            6, unique_matrices=2, sizes=(8,), deadline_s=1.0, seed=9
        )
        for a, b in zip(plain, deadlined):
            assert a.digest == b.digest
            assert np.array_equal(a.b, b.b)
            assert a.seed == b.seed
            assert b.deadline_s == 1.0 and a.deadline_s is None


# ----------------------------------------------------------------------
# load shedding
# ----------------------------------------------------------------------


class TestLoadShedding:
    def test_sheds_when_estimated_wait_exceeds_threshold(self, slow_kind):
        started, release = slow_kind
        config = ServiceConfig(
            workers=1,
            max_linger_s=0.0,
            resilience=ResiliencePolicy(shed_latency_s=0.5),
        )
        with SolverService(config) as service:
            blocker = service.submit(
                wishart_matrix(8, rng=0), np.ones(8), solver="slow-test"
            )
            assert started.wait(timeout=30)
            # White-box: force the learned service time high so the
            # one-deep backlog alone exceeds the threshold.
            for shard in service._shards:
                shard.service_ewma_s = 10.0
            with pytest.raises(OverloadedError) as info:
                service.submit(wishart_matrix(8, rng=1), np.ones(8))
            assert info.value.retry_after_s >= 0.5
            assert info.value.retryable
            release.set()
            blocker.result(timeout=30)
            metrics = service.metrics()
        assert metrics.requests_shed == 1

    def test_no_shedding_when_disabled_or_idle(self):
        config = ServiceConfig(workers=1)  # shed_latency_s=None
        with SolverService(config) as service:
            ticket = service.submit(wishart_matrix(8, rng=0), np.ones(8))
            ticket.result(timeout=30)
            assert service.metrics().requests_shed == 0


# ----------------------------------------------------------------------
# circuit breaker, end to end
# ----------------------------------------------------------------------


class TestBreakerEndToEnd:
    def test_trip_invalidate_probe_recover(self, flaky_kind):
        fail = flaky_kind
        config = ServiceConfig(
            workers=1,
            max_linger_s=0.0,
            resilience=ResiliencePolicy(breaker_threshold=2, breaker_reset_s=0.1),
        )
        matrix = wishart_matrix(8, rng=0)
        with SolverService(config) as service:
            # Healthy prepare + solve populates the cache.
            service.submit(matrix, np.ones(8), solver="flaky-test").result(timeout=30)
            assert len(service.cached_solvers()) == 1

            fail.set()
            for _ in range(2):  # two consecutive failing requests trip it
                ticket = service.submit(matrix, np.ones(8), solver="flaky-test")
                assert isinstance(ticket.exception(timeout=30), SolverError)

            # Tripped: submit fails fast without queueing, entry evicted.
            with pytest.raises(CircuitOpenError) as info:
                service.submit(matrix, np.ones(8), solver="flaky-test")
            assert info.value.retry_after_s > 0.0
            assert info.value.retryable
            assert len(service.cached_solvers()) == 0

            # Recovery: heal the solver, wait out the reset window, and
            # the half-open probe re-prepares from scratch.
            fail.clear()
            time.sleep(0.15)
            recovered = service.submit(matrix, np.ones(8), solver="flaky-test")
            assert recovered.result(timeout=30).x.shape == (8,)
            metrics = service.metrics()
        assert metrics.cache.misses == 2  # initial prepare + post-trip re-prepare
        assert metrics.cache.evictions >= 1
        # closed -> open -> half_open -> closed
        assert metrics.breaker_transitions == 3
        assert metrics.requests_rejected >= 1

    def test_breaker_disabled_never_rejects(self, flaky_kind):
        fail = flaky_kind
        config = ServiceConfig(
            workers=1,
            max_linger_s=0.0,
            resilience=ResiliencePolicy(breaker_threshold=0),
        )
        matrix = wishart_matrix(8, rng=0)
        with SolverService(config) as service:
            service.submit(matrix, np.ones(8), solver="flaky-test").result(timeout=30)
            fail.set()
            for _ in range(8):  # far past any default threshold
                ticket = service.submit(matrix, np.ones(8), solver="flaky-test")
                assert isinstance(ticket.exception(timeout=30), SolverError)
            metrics = service.metrics()
        assert metrics.breaker_transitions == 0
        assert metrics.requests_rejected == 0


# ----------------------------------------------------------------------
# blast-radius isolation
# ----------------------------------------------------------------------


def _plan_poisoning_some(tags, rate, kind="fail", lo=1):
    """A chaos seed that poisons some but not all of ``tags``."""
    for seed in range(500):
        plan = ChaosPlan(seed=seed, solve_failure_rate=rate)
        hit = sum(plan.decides(kind, rate, tag) for tag in tags)
        if lo <= hit < len(tags):
            return plan
    raise AssertionError("no poisoning seed found in 500 tries")


class TestIsolation:
    def test_one_poisoned_request_fails_alone(self):
        matrix = wishart_matrix(12, rng=0)
        bs = [random_vector(12, rng=i) for i in range(10)]
        requests = [
            SolveRequest(matrix=matrix, b=b, seed=i) for i, b in enumerate(bs)
        ]
        plan = _plan_poisoning_some([rhs_tag(b) for b in bs], rate=0.2)
        poisoned = {
            i for i, b in enumerate(bs)
            if plan.decides("fail", plan.solve_failure_rate, rhs_tag(b))
        }
        config = ServiceConfig(
            workers=1,
            max_batch_size=10,
            max_linger_s=0.005,
            resilience=ResiliencePolicy(breaker_threshold=0),
            entry_transform=chaos_entry_transform(plan),
        )
        reference, _ = run_sequential(requests, ServiceConfig(workers=1))
        with SolverService(config) as service:
            tickets = [service.submit_request(r) for r in requests]
            outcomes = [t.exception(timeout=60) for t in tickets]
            metrics = service.metrics()
        for i, (ticket, outcome) in enumerate(zip(tickets, outcomes)):
            if i in poisoned:
                assert isinstance(outcome, SolverError), i
            else:
                assert outcome is None, (i, outcome)
                assert _identical(ticket.result(), reference[i]), i
        # Every failing execution went through at least one bisection step.
        assert metrics.retries >= 1
        assert metrics.requests_failed == len(poisoned)
        assert metrics.requests_completed == len(bs) - len(poisoned)

    def test_mixed_traffic_survivors_bit_identical(self):
        requests = mixed_traffic(24, unique_matrices=3, sizes=(8, 12), seed=11)
        plan = _plan_poisoning_some(
            [rhs_tag(r.b) for r in requests], rate=0.25, lo=2
        )
        config = ServiceConfig(
            workers=2,
            max_batch_size=6,
            resilience=ResiliencePolicy(breaker_threshold=0),
            entry_transform=chaos_entry_transform(plan),
        )
        reference, _ = run_sequential(requests, ServiceConfig(workers=1))
        with SolverService(config) as service:
            tickets = [service.submit_request(r) for r in requests]
            outcomes = [t.exception(timeout=60) for t in tickets]
        for i, (request, outcome) in enumerate(zip(requests, outcomes)):
            doomed = plan.decides(
                "fail", plan.solve_failure_rate, rhs_tag(request.b)
            )
            if doomed:
                assert isinstance(outcome, SolverError)
            else:
                assert outcome is None
                assert _identical(tickets[i].result(), reference[i])


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------


class TestDigitalFallback:
    def test_fallback_result_is_reference_exact(self):
        matrix = wishart_matrix(10, rng=3)
        b = random_vector(10, rng=4)
        request = SolveRequest(matrix=matrix, b=b)
        result = digital_fallback(request)
        assert result.solver == "digital-fallback"
        assert result.metadata["degraded"] is True
        assert np.array_equal(result.x, result.reference)
        assert result.relative_error == 0.0
        assert np.allclose(result.x, np.linalg.solve(matrix, b))
        lean = digital_fallback(request, lean=True)
        assert np.array_equal(lean.x, result.x)
        assert lean.operations == ()

    def test_service_degrades_instead_of_failing(self):
        matrix = wishart_matrix(10, rng=0)
        bs = [random_vector(10, rng=i) for i in range(5)]
        plan = ChaosPlan(seed=0, solve_failure_rate=1.0)  # every solve fails
        config = ServiceConfig(
            workers=1,
            resilience=ResiliencePolicy(breaker_threshold=0, fallback="digital"),
            entry_transform=chaos_entry_transform(plan),
        )
        with SolverService(config) as service:
            results = [
                service.submit(matrix, b, seed=i).result(timeout=60)
                for i, b in enumerate(bs)
            ]
            metrics = service.metrics()
        for b, result in zip(bs, results):
            assert result.solver == "digital-fallback"
            assert result.metadata["degraded"] is True
            assert result.relative_error == 0.0
            assert np.allclose(result.x, np.linalg.solve(matrix, b))
        assert metrics.degraded == len(bs)
        assert metrics.requests_failed == 0

    def test_fallback_none_fails_as_before(self):
        matrix = wishart_matrix(10, rng=0)
        plan = ChaosPlan(seed=0, solve_failure_rate=1.0)
        config = ServiceConfig(
            workers=1,
            resilience=ResiliencePolicy(breaker_threshold=0),
            entry_transform=chaos_entry_transform(plan),
        )
        with SolverService(config) as service:
            ticket = service.submit(matrix, np.ones(10))
            assert isinstance(ticket.exception(timeout=60), SolverError)
            assert service.metrics().degraded == 0


# ----------------------------------------------------------------------
# crash-proof workers
# ----------------------------------------------------------------------


class TestWorkerCrashes:
    def test_crash_fails_inflight_and_shard_recovers(self):
        matrix = wishart_matrix(10, rng=0)
        b = random_vector(10, rng=1)
        plan = ChaosPlan(seed=0, worker_kill_rate=1.0)  # kill every tag, once
        config = ServiceConfig(
            workers=1,
            resilience=ResiliencePolicy(breaker_threshold=0),
            entry_transform=chaos_entry_transform(plan),
        )
        reference, _ = run_sequential(
            [SolveRequest(matrix=matrix, b=b, seed=7)], ServiceConfig(workers=1)
        )
        with SolverService(config) as service:
            first = service.submit(matrix, b, seed=7)
            assert isinstance(first.exception(timeout=30), ShardFailedError)
            assert first.exception().retryable
            # The chaos wrapper kills each tag once; the resubmitted
            # request executes on the restarted loop, bit-identically.
            second = service.submit(matrix, b, seed=7)
            assert _identical(second.result(timeout=30), reference[0])
            metrics = service.metrics()
        assert metrics.shard_crashes == 1
        assert metrics.requests_failed == 1
        assert metrics.requests_completed == 1

    def test_shard_dies_after_restart_budget(self):
        matrix = wishart_matrix(10, rng=0)
        plan = ChaosPlan(seed=0, worker_kill_rate=1.0)
        config = ServiceConfig(
            workers=1,
            resilience=ResiliencePolicy(
                breaker_threshold=0, max_shard_restarts=0
            ),
            entry_transform=chaos_entry_transform(plan),
        )
        service = SolverService(config)
        try:
            first = service.submit(matrix, random_vector(10, rng=1))
            assert isinstance(first.exception(timeout=30), ShardFailedError)
            # The crash handler flips the dead flag right after failing
            # the in-flight batch; wait for it, then submits fail fast.
            deadline = time.monotonic() + 10.0
            while not service._shards[0].dead and time.monotonic() < deadline:
                time.sleep(0.005)
            assert service._shards[0].dead
            with pytest.raises(ShardFailedError):
                service.submit(matrix, random_vector(10, rng=2))
        finally:
            service.close(wait=False)


# ----------------------------------------------------------------------
# no hung tickets (lifecycle satellites)
# ----------------------------------------------------------------------


class TestNoHungTickets:
    def test_close_nowait_resolves_deep_backlog(self, slow_kind):
        started, release = slow_kind
        config = ServiceConfig(workers=1, max_linger_s=0.0)
        service = SolverService(config)
        matrix = wishart_matrix(8, rng=0)
        blocker = service.submit(matrix, np.ones(8), solver="slow-test")
        assert started.wait(timeout=30)
        backlog = [
            service.submit(matrix, random_vector(8, rng=i), solver="slow-test")
            for i in range(30)
        ]
        closer = threading.Thread(target=service.close, kwargs={"wait": False})
        closer.start()
        release.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        # Every ticket resolves: the wedged one may have executed, every
        # stranded one fails with ServiceClosedError. None may hang.
        assert blocker.exception(timeout=30) is None or isinstance(
            blocker.exception(), ServiceClosedError
        )
        for ticket in backlog:
            outcome = ticket.exception(timeout=30)
            assert outcome is None or isinstance(outcome, ServiceClosedError)
            assert ticket.done()

    def test_solve_all_waits_out_tickets_on_midlist_rejection(self, slow_kind):
        started, release = slow_kind
        config = ServiceConfig(
            workers=1, queue_depth=1, backpressure="reject", max_linger_s=0.0
        )
        matrix = wishart_matrix(8, rng=0)
        requests = [
            SolveRequest(matrix=matrix, b=np.ones(8), solver="slow-test", seed=i)
            for i in range(3)
        ]
        with SolverService(config) as service:
            with ThreadPoolExecutor(max_workers=1) as pool:
                call = pool.submit(service.solve_all, requests)
                assert started.wait(timeout=30)
                # The third submit was rejected (queue depth 1); solve_all
                # must now be *waiting out* the two submitted tickets, not
                # raising with them still in flight.
                time.sleep(0.05)
                assert not call.done()
                release.set()
                with pytest.raises(ServiceOverloadedError):
                    call.result(timeout=30)
            metrics = service.metrics()
        # Every submitted ticket was resolved before solve_all re-raised.
        # (Whether 1 or 2 got in before the rejection depends on how fast
        # the worker drained the depth-1 queue.)
        assert metrics.requests_rejected == 1
        assert 1 <= metrics.requests_submitted <= 2
        assert (
            metrics.requests_completed + metrics.requests_failed
            == metrics.requests_submitted
        )


# ----------------------------------------------------------------------
# metrics surface
# ----------------------------------------------------------------------


class TestResilienceMetrics:
    def test_new_fields_in_dict_and_table(self):
        requests = mixed_traffic(8, unique_matrices=2, sizes=(8,), seed=2)
        with SolverService(ServiceConfig(workers=1)) as service:
            service.solve_all(requests)
            metrics = service.metrics()
        payload = metrics.as_dict()
        for field in (
            "requests_shed",
            "deadline_misses",
            "retries",
            "breaker_transitions",
            "degraded",
            "shard_crashes",
            "latency_p99_s",
        ):
            assert field in payload
        assert payload["latency_p99_s"] >= payload["latency_p95_s"]
        table = metrics.table()
        for row in (
            "requests shed",
            "deadline misses",
            "isolation retries",
            "breaker transitions",
            "degraded (fallback)",
            "shard crashes",
            "latency p99 (ms)",
        ):
            assert row in table
