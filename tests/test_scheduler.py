"""Tests for the clock controller and pipelining model."""

import pytest

from repro.amc.scheduler import (
    ClockController,
    MACRO_ARRAYS,
    PHASE_PROGRAM,
    PhaseSchedule,
    default_program,
    simulate_schedule,
)
from repro.errors import ScheduleError


class TestPhaseProgram:
    def test_five_phases(self):
        assert len(PHASE_PROGRAM) == 5

    def test_paper_sequence(self):
        """INV, MVM, INV, MVM, INV over A1, A3, A4s, A2, A1."""
        kinds = [kind for _, kind, _ in PHASE_PROGRAM]
        arrays = [array for _, _, array in PHASE_PROGRAM]
        assert kinds == ["inv", "mvm", "inv", "mvm", "inv"]
        assert arrays == ["A1", "A3", "A4s", "A2", "A1"]

    def test_a1_used_twice(self):
        arrays = [array for _, _, array in PHASE_PROGRAM]
        assert arrays.count("A1") == 2

    def test_invalid_kind_rejected(self):
        with pytest.raises(ScheduleError):
            PhaseSchedule("S9", "add", "A1")

    def test_invalid_array_rejected(self):
        with pytest.raises(ScheduleError):
            PhaseSchedule("S0", "inv", "A7")


class TestClockController:
    def test_gate_word_one_hot(self):
        """Exactly one transmission-gate group conducts per cycle."""
        controller = ClockController()
        for cycle in range(10):
            word = controller.gate_word(cycle)
            assert sum(word) == 1

    def test_gate_word_targets_active_phase(self):
        controller = ClockController()
        groups = controller.gate_groups
        for cycle in range(5):
            phase = controller.phase(cycle)
            word = controller.gate_word(cycle)
            active = groups[word.index(True)]
            assert active == (phase.array, phase.kind)

    def test_program_wraps_around(self):
        controller = ClockController()
        assert controller.phase(0) == controller.phase(5)

    def test_gate_group_count(self):
        controller = ClockController()
        assert len(controller.gate_groups) == 2 * len(MACRO_ARRAYS)

    def test_empty_program_rejected(self):
        controller = ClockController(program=())
        with pytest.raises(ScheduleError):
            controller.phase(0)

    def test_default_program_objects(self):
        program = default_program()
        assert all(isinstance(p, PhaseSchedule) for p in program)


class TestScheduleSimulation:
    OPS = [1e-6] * 5

    def test_single_problem_latency(self):
        result = simulate_schedule(
            self.OPS, t_dac=2e-7, t_adc=2e-7, t_snh=1e-8, n_problems=1
        )
        # DAC + five ops + four inter-op S&H transfers + ADC.
        expected = 2e-7 + 5e-6 + 4 * 1e-8 + 2e-7
        assert result.latency_first == pytest.approx(expected, rel=1e-6)

    def test_pipelined_beats_serial(self):
        serial = simulate_schedule(
            self.OPS, t_dac=1e-6, t_adc=1e-6, t_snh=1e-8, n_problems=8, pipelined=False
        )
        piped = simulate_schedule(
            self.OPS, t_dac=1e-6, t_adc=1e-6, t_snh=1e-8, n_problems=8, pipelined=True
        )
        assert piped.makespan < serial.makespan
        assert piped.throughput > serial.throughput

    def test_pipelining_hides_conversions(self):
        """At steady state the period approaches the analog time alone."""
        result = simulate_schedule(
            self.OPS, t_dac=1e-6, t_adc=1e-6, t_snh=0.0, n_problems=50, pipelined=True
        )
        analog_per_problem = sum(self.OPS)
        period = result.makespan / 50
        assert period < analog_per_problem * 1.1

    def test_opa_bank_never_double_booked(self):
        result = simulate_schedule(
            self.OPS, t_dac=5e-7, t_adc=5e-7, t_snh=1e-8, n_problems=6, pipelined=True
        )
        opa_events = sorted(
            (e for e in result.events if e.resource == "opa"), key=lambda e: e.start
        )
        for first, second in zip(opa_events, opa_events[1:]):
            assert second.start >= first.end - 1e-15

    def test_event_durations(self):
        result = simulate_schedule(self.OPS, t_dac=1e-7, t_adc=1e-7, t_snh=0.0)
        for event in result.events:
            assert event.duration >= 0.0

    def test_empty_ops_rejected(self):
        with pytest.raises(ScheduleError):
            simulate_schedule([], t_dac=1e-7, t_adc=1e-7, t_snh=0.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ScheduleError):
            simulate_schedule([1e-6], t_dac=-1.0, t_adc=0.0, t_snh=0.0)

    def test_bad_problem_count_rejected(self):
        with pytest.raises(ScheduleError):
            simulate_schedule([1e-6], t_dac=0.0, t_adc=0.0, t_snh=0.0, n_problems=0)
