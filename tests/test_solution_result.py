"""Tests for the SolveResult container."""

import numpy as np

from repro.amc.config import HardwareConfig
from repro.core.blockamc import BlockAMCSolver
from repro.core.solution import SolveResult
from repro.workloads.matrices import random_vector, wishart_matrix


class TestSolveResult:
    def test_relative_error_matches_metric(self):
        x = np.array([1.0, 2.0])
        ref = np.array([1.0, 2.5])
        result = SolveResult(x=x, reference=ref, solver="test")
        assert result.relative_error == 0.5 / 3.5

    def test_size(self):
        result = SolveResult(x=np.zeros(5) + 1, reference=np.ones(5), solver="t")
        assert result.size == 5

    def test_empty_operations_defaults(self):
        result = SolveResult(x=np.ones(2), reference=np.ones(2), solver="t")
        assert result.operations == ()
        assert result.analog_time_s == 0.0
        assert result.operation_counts == {}
        assert not result.saturated

    def test_populated_from_solver(self):
        matrix = wishart_matrix(6, rng=0)
        result = BlockAMCSolver(HardwareConfig.ideal()).solve(
            matrix, random_vector(6, rng=1), rng=2
        )
        assert result.analog_time_s > 0.0
        assert sum(result.operation_counts.values()) == 5
        assert result.metadata["scale"] > 0.0
