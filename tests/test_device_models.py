"""Unit tests for repro.devices.models."""

import numpy as np
import pytest

from repro.devices.models import PAPER_G0_SIEMENS, DeviceSpec
from repro.errors import DeviceError
from repro.utils.validation import ValidationError


class TestDeviceSpecValidation:
    def test_default_is_valid(self):
        spec = DeviceSpec()
        assert spec.g_min < spec.g_max

    def test_gmin_above_gmax_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(g_min=2e-4, g_max=1e-4)

    def test_gmin_equal_gmax_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(g_min=1e-4, g_max=1e-4)

    def test_negative_goff_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(g_off=-1e-9)

    def test_goff_above_gmin_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(g_min=1e-6, g_max=1e-4, g_off=2e-6)

    def test_single_level_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(levels=1)

    def test_nonpositive_gmax_rejected(self):
        with pytest.raises((DeviceError, ValidationError)):
            DeviceSpec(g_max=0.0)


class TestFactories:
    def test_paper_reference_window(self):
        spec = DeviceSpec.paper_reference()
        assert spec.g_max == PAPER_G0_SIEMENS
        assert spec.levels is None
        assert spec.g_off == 0.0

    def test_finite_window_dynamic_range(self):
        spec = DeviceSpec.finite_window(dynamic_range=50.0)
        assert spec.dynamic_range == pytest.approx(50.0)

    def test_finite_window_levels(self):
        spec = DeviceSpec.finite_window(levels=64)
        assert spec.levels == 64


class TestContains:
    def test_in_window(self):
        spec = DeviceSpec(g_min=1e-6, g_max=1e-4)
        assert spec.contains(np.array([1e-6, 5e-5, 1e-4])).all()

    def test_off_state_contained(self):
        spec = DeviceSpec(g_min=1e-6, g_max=1e-4, g_off=0.0)
        assert spec.contains(np.array([0.0])).all()

    def test_outside_window(self):
        spec = DeviceSpec(g_min=1e-6, g_max=1e-4)
        result = spec.contains(np.array([1e-7, 2e-4]))
        assert not result.any()


class TestClip:
    def test_clips_above_gmax(self):
        spec = DeviceSpec(g_min=1e-6, g_max=1e-4)
        np.testing.assert_allclose(spec.clip(np.array([5e-4])), [1e-4])

    def test_small_targets_become_off(self):
        spec = DeviceSpec(g_min=1e-6, g_max=1e-4, g_off=0.0)
        np.testing.assert_allclose(spec.clip(np.array([1e-8])), [0.0])

    def test_near_gmin_clips_up(self):
        spec = DeviceSpec(g_min=1e-6, g_max=1e-4)
        np.testing.assert_allclose(spec.clip(np.array([7e-7])), [1e-6])

    def test_in_window_untouched(self):
        spec = DeviceSpec(g_min=1e-6, g_max=1e-4)
        np.testing.assert_allclose(spec.clip(np.array([3e-5])), [3e-5])

    def test_preserves_shape(self):
        spec = DeviceSpec()
        out = spec.clip(np.zeros((3, 4)))
        assert out.shape == (3, 4)
