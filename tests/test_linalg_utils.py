"""Unit and property tests for repro.utils.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.utils.linalg import (
    block_join,
    block_split,
    condition_number,
    is_square,
    relative_l2_error,
    schur_complement,
)
from repro.workloads.matrices import diagonally_dominant_matrix


class TestIsSquare:
    def test_square(self):
        assert is_square(np.eye(3))

    def test_rectangular(self):
        assert not is_square(np.zeros((2, 3)))

    def test_vector(self):
        assert not is_square(np.zeros(3))


class TestBlockSplitJoin:
    def test_shapes(self):
        a = np.arange(25, dtype=float).reshape(5, 5)
        a1, a2, a3, a4 = block_split(a, 2)
        assert a1.shape == (2, 2)
        assert a2.shape == (2, 3)
        assert a3.shape == (3, 2)
        assert a4.shape == (3, 3)

    def test_contents(self):
        a = np.arange(16, dtype=float).reshape(4, 4)
        a1, a2, a3, a4 = block_split(a, 2)
        np.testing.assert_array_equal(a1, [[0, 1], [4, 5]])
        np.testing.assert_array_equal(a4, [[10, 11], [14, 15]])

    @pytest.mark.parametrize("split", [0, 4, -1, 7])
    def test_invalid_split(self, split):
        with pytest.raises(PartitionError):
            block_split(np.eye(4), split)

    @given(
        n=st.integers(min_value=2, max_value=12),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_join_inverts_split(self, n, data):
        split = data.draw(st.integers(min_value=1, max_value=n - 1))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        a = rng.normal(size=(n, n))
        blocks = block_split(a, split)
        np.testing.assert_array_equal(block_join(*blocks), a)

    def test_join_rejects_mismatched_blocks(self):
        with pytest.raises(PartitionError):
            block_join(np.eye(2), np.zeros((3, 2)), np.zeros((2, 2)), np.eye(2))


class TestSchurComplement:
    def test_known_value(self):
        a1 = np.array([[2.0, 0.0], [0.0, 2.0]])
        a2 = np.array([[1.0], [1.0]])
        a3 = np.array([[1.0, 1.0]])
        a4 = np.array([[3.0]])
        # 3 - [1 1] (I/2) [1 1]^T = 3 - 1 = 2
        np.testing.assert_allclose(schur_complement(a1, a2, a3, a4), [[2.0]])

    def test_singular_a1_raises(self):
        with pytest.raises(PartitionError, match="singular"):
            schur_complement(np.zeros((2, 2)), np.eye(2), np.eye(2), np.eye(2))

    @given(st.integers(min_value=2, max_value=10), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_block_elimination_identity(self, n, seed):
        """Solving via the Schur complement must equal the direct solve."""
        rng = np.random.default_rng(seed)
        a = diagonally_dominant_matrix(n, rng)
        split = max(1, n // 2)
        a1 = a[:split, :split]
        a2 = a[:split, split:]
        a3 = a[split:, :split]
        a4 = a[split:, split:]
        s = schur_complement(a1, a2, a3, a4)
        b = rng.normal(size=n)
        f, g = b[:split], b[split:]
        z = np.linalg.solve(s, g - a3 @ np.linalg.solve(a1, f))
        y = np.linalg.solve(a1, f - a2 @ z)
        x = np.concatenate([y, z])
        np.testing.assert_allclose(x, np.linalg.solve(a, b), rtol=1e-8, atol=1e-10)


class TestNorms:
    def test_condition_number_identity(self):
        assert condition_number(np.eye(5)) == pytest.approx(1.0)

    def test_condition_number_scaling_invariant(self):
        a = np.diag([1.0, 10.0])
        assert condition_number(a) == pytest.approx(10.0)
        assert condition_number(3.0 * a) == pytest.approx(10.0)

    def test_relative_l2_error_zero_for_equal(self):
        v = np.array([1.0, -2.0, 3.0])
        assert relative_l2_error(v, v) == 0.0

    def test_relative_l2_error_value(self):
        assert relative_l2_error([3.0, 4.0], [3.0, 4.0 + 5.0]) == pytest.approx(1.0)

    def test_relative_l2_error_zero_reference_raises(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            relative_l2_error([0.0, 0.0], [1.0, 1.0])
