"""Documentation integrity: the docs must not rot.

Checks that every file the documentation points at exists and that the
deliverable structure (README, DESIGN, EXPERIMENTS, examples, benches)
is in place.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestDeliverablesPresent:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"]
    )
    def test_top_level_file(self, name):
        assert (ROOT / name).is_file(), f"{name} is a required deliverable"

    def test_api_docs(self):
        assert (ROOT / "docs" / "API.md").is_file()

    def test_minimum_example_count(self):
        assert len(list((ROOT / "examples").glob("*.py"))) >= 3

    def test_quickstart_exists(self):
        assert (ROOT / "examples" / "quickstart.py").is_file()

    def test_bench_per_headline_figure(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for figure in ("fig6", "fig7", "fig8", "fig9", "fig10"):
            assert any(figure in b for b in benches), f"no bench for {figure}"


class TestReferencesResolve:
    def _referenced_paths(self, text):
        # Backtick-quoted repo-relative paths like `benchmarks/bench_x.py`.
        for match in re.finditer(r"`((?:src|tests|benchmarks|examples|docs)/[\w./-]+)`", text):
            yield match.group(1)

    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_paths_mentioned_in_docs_exist(self, doc):
        text = (ROOT / doc).read_text()
        for path in self._referenced_paths(text):
            assert (ROOT / path).exists(), f"{doc} references missing {path}"

    def test_design_lists_every_src_package(self):
        text = (ROOT / "DESIGN.md").read_text()
        packages = [
            p.name
            for p in (ROOT / "src" / "repro").iterdir()
            if p.is_dir() and (p / "__init__.py").exists()
        ]
        for package in packages:
            assert f"repro.{package}" in text, (
                f"DESIGN.md inventory is missing the repro.{package} package"
            )

    def test_experiments_covers_every_figure_bench(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_fig*.py"):
            assert bench.name in text, f"EXPERIMENTS.md does not mention {bench.name}"

    def test_readme_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.finditer(r"python (examples/[\w_]+\.py)", text):
            assert (ROOT / match.group(1)).is_file(), f"README lists missing {match.group(1)}"
