"""Tests for the first-order sensitivity analysis."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    inv_sensitivity,
    mvm_sensitivity,
    predicted_variation_error,
)
from repro.errors import SolverError
from repro.workloads.matrices import random_vector, wishart_matrix
from repro.crossbar.mapping import normalize_matrix


@pytest.fixture
def system():
    matrix, _ = normalize_matrix(wishart_matrix(10, rng=0))
    b = random_vector(10, rng=1)
    return matrix, b


class TestInvSensitivity:
    def test_matches_finite_difference(self, system):
        """The analytic map agrees with brute-force perturbation."""
        matrix, b = system
        x = np.linalg.solve(matrix, b)
        sens = inv_sensitivity(matrix, b)
        d = 1e-7
        rng = np.random.default_rng(2)
        for _ in range(5):
            i, j = rng.integers(0, 10, size=2)
            perturbed = matrix.copy()
            perturbed[i, j] += d
            dx = np.linalg.solve(perturbed, b) - x
            measured = np.linalg.norm(dx) / d
            assert measured == pytest.approx(sens.values[i, j], rel=1e-3)

    def test_singular_rejected(self):
        with pytest.raises(SolverError):
            inv_sensitivity(np.ones((3, 3)), np.ones(3))

    def test_top_cells_sorted(self, system):
        matrix, b = system
        top = inv_sensitivity(matrix, b).top_cells(5)
        values = [v for _, _, v in top]
        assert values == sorted(values, reverse=True)

    def test_top_cells_count_validated(self, system):
        matrix, b = system
        with pytest.raises(ValueError):
            inv_sensitivity(matrix, b).top_cells(0)

    def test_normalized_peak_one(self, system):
        matrix, b = system
        normed = inv_sensitivity(matrix, b).normalized()
        assert float(np.max(normed)) == pytest.approx(1.0)


class TestMvmSensitivity:
    def test_row_constant(self):
        matrix = np.eye(4)
        x = np.array([1.0, -2.0, 0.5, 0.0])
        sens = mvm_sensitivity(matrix, x)
        np.testing.assert_allclose(sens.values[0], np.abs(x))
        np.testing.assert_allclose(sens.values[3], np.abs(x))

    def test_matches_finite_difference(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(5, 5))
        x = rng.normal(size=5)
        sens = mvm_sensitivity(matrix, x)
        d = 1e-7
        i, j = 2, 4
        perturbed = matrix.copy()
        perturbed[i, j] += d
        dy = (perturbed @ x) - (matrix @ x)
        assert np.linalg.norm(dy) / d == pytest.approx(sens.values[i, j], rel=1e-6)


class TestPredictedVariationError:
    def test_prediction_matches_monte_carlo(self, system):
        """The analytic propagation lands within ~2x of measurement —
        closing the loop between Figs. 7's statistics and the model."""
        matrix, b = system
        sigma = 0.05
        predicted = predicted_variation_error(matrix, b, sigma)

        rng = np.random.default_rng(4)
        x = np.linalg.solve(matrix, b)
        errors = []
        for _ in range(200):
            noisy = matrix * (1.0 + rng.normal(0.0, sigma, size=matrix.shape))
            errors.append(
                np.linalg.norm(np.linalg.solve(noisy, b) - x) / np.linalg.norm(x)
            )
        # Compare against the median: the error distribution is heavy
        # tailed (draws that push the matrix toward singularity are
        # second-order effects the linear model cannot capture).
        measured = float(np.median(errors))
        assert predicted / 2.5 < measured < predicted * 2.5

    def test_scales_linearly_in_sigma(self, system):
        matrix, b = system
        assert predicted_variation_error(matrix, b, 0.1) == pytest.approx(
            2.0 * predicted_variation_error(matrix, b, 0.05)
        )

    def test_bad_sigma_rejected(self, system):
        matrix, b = system
        with pytest.raises(SolverError):
            predicted_variation_error(matrix, b, 0.0)
