"""Tests for the interconnect resistance models."""

import numpy as np
import pytest

from repro.crossbar.parasitics import (
    ParasiticConfig,
    effective_conductance_matrix,
    exact_effective_matrix,
    first_order_effective_matrix,
)
from repro.errors import ValidationError


G0 = 100e-6


class TestConfig:
    def test_defaults(self):
        cfg = ParasiticConfig()
        assert cfg.r_wire == 0.0
        assert cfg.is_ideal

    def test_paper_reference(self):
        cfg = ParasiticConfig.paper_reference()
        assert cfg.r_wire == 1.0
        assert not cfg.is_ideal

    def test_invalid_fidelity(self):
        with pytest.raises(ValueError, match="fidelity"):
            ParasiticConfig(fidelity="approximate")

    def test_negative_resistance(self):
        with pytest.raises(ValueError):
            ParasiticConfig(r_wire=-1.0)

    def test_none_fidelity_is_ideal_even_with_resistance(self):
        assert ParasiticConfig(r_wire=5.0, fidelity="none").is_ideal


class TestFirstOrder:
    def test_zero_resistance_identity(self):
        g = np.full((3, 3), G0)
        np.testing.assert_array_equal(first_order_effective_matrix(g, 0.0), g)

    def test_reduces_conductance(self):
        g = np.full((4, 4), G0)
        eff = first_order_effective_matrix(g, 10.0)
        assert np.all(eff <= g)
        assert np.all(eff > 0.0)

    def test_far_cells_degrade_more(self):
        g = np.full((8, 8), G0)
        eff = first_order_effective_matrix(g, 10.0)
        assert eff[7, 7] < eff[0, 0]

    def test_zero_cells_stay_zero(self):
        g = np.zeros((3, 3))
        g[1, 1] = G0
        eff = first_order_effective_matrix(g, 10.0)
        assert eff[0, 0] == 0.0
        assert eff[1, 1] < G0

    def test_stacked_slices_match_scalar_calls(self):
        rng = np.random.default_rng(5)
        stack = rng.uniform(0.0, G0, size=(4, 5, 3))
        batched = first_order_effective_matrix(stack, 2.0)
        for t in range(stack.shape[0]):
            np.testing.assert_array_equal(
                batched[t], first_order_effective_matrix(stack[t], 2.0)
            )

    def test_stacked_validation_matches_scalar(self):
        """The 3-D path rejects the same inputs the scalar path rejects."""
        bad = np.full((2, 3, 3), G0)
        bad[1, 0, 0] = np.nan
        with pytest.raises(ValidationError, match="non-finite"):
            first_order_effective_matrix(bad, 1.0)
        with pytest.raises(ValidationError, match="non-empty"):
            first_order_effective_matrix(np.empty((0, 3, 3)), 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            first_order_effective_matrix(np.full((2, 3, 3), -G0), 1.0)

    def test_rejects_negative_conductance(self):
        with pytest.raises(ValueError):
            first_order_effective_matrix(np.full((2, 2), -1.0), 1.0)


class TestExact:
    def test_zero_resistance_identity(self):
        g = np.full((3, 3), G0)
        np.testing.assert_array_equal(exact_effective_matrix(g, 0.0), g)

    def test_single_cell_matches_series_formula(self):
        """With one cell at (i, j), the exact network is a pure series
        path: (i+1) BL segments + cell + (j+1) WL segments."""
        r = 50.0
        for i, j in [(0, 0), (2, 3), (4, 1)]:
            g = np.zeros((5, 5))
            g[i, j] = G0
            eff = exact_effective_matrix(g, r)
            expected = 1.0 / (1.0 / G0 + r * ((i + 1) + (j + 1)))
            assert eff[i, j] == pytest.approx(expected, rel=1e-9)
            # All other entries are zero (no other cells conduct).
            mask = np.ones_like(g, dtype=bool)
            mask[i, j] = False
            assert np.max(np.abs(eff[mask])) < G0 * 1e-12

    def test_uniform_array_symmetric_under_transpose(self):
        """Uniform conductances + symmetric geometry => symmetric M."""
        g = np.full((4, 4), G0)
        eff = exact_effective_matrix(g, 25.0)
        np.testing.assert_allclose(eff, eff.T, rtol=1e-9)

    def test_degradation_increases_with_resistance(self):
        g = np.full((6, 6), G0)
        loss_small = np.sum(g - exact_effective_matrix(g, 1.0))
        loss_large = np.sum(g - exact_effective_matrix(g, 10.0))
        assert loss_large > loss_small > 0.0

    def test_first_order_tracks_exact(self):
        """The perturbation model captures the exact effect to second
        order: at r*G0*n = 1.6e-3 the residual is a few percent."""
        rng = np.random.default_rng(0)
        g = rng.uniform(0.0, G0, size=(16, 16))
        exact = exact_effective_matrix(g, 1.0)
        fast = first_order_effective_matrix(g, 1.0)
        perturbation = np.linalg.norm(exact - g)
        residual = np.linalg.norm(fast - exact)
        assert perturbation > 0.0
        assert residual < 0.05 * perturbation

    def test_first_order_residual_is_second_order(self):
        """Halving r must shrink the residual ~4x (second order)."""
        rng = np.random.default_rng(1)
        g = rng.uniform(0.0, G0, size=(12, 12))

        def residual(r):
            exact = exact_effective_matrix(g, r)
            fast = first_order_effective_matrix(g, r)
            return np.linalg.norm(fast - exact)

        ratio = residual(2.0) / residual(1.0)
        assert 3.0 < ratio < 5.0

    def test_rejects_negative_resistance(self):
        with pytest.raises(ValueError):
            exact_effective_matrix(np.full((2, 2), G0), -1.0)


class TestDispatch:
    def test_none_fidelity(self):
        g = np.full((3, 3), G0)
        out = effective_conductance_matrix(g, ParasiticConfig(r_wire=9.0, fidelity="none"))
        np.testing.assert_array_equal(out, g)

    def test_first_order_dispatch(self):
        g = np.full((3, 3), G0)
        cfg = ParasiticConfig(r_wire=10.0, fidelity="first_order")
        out = effective_conductance_matrix(g, cfg)
        np.testing.assert_array_equal(out, first_order_effective_matrix(g, 10.0, cfg.alpha))

    def test_exact_dispatch(self):
        g = np.full((3, 3), G0)
        cfg = ParasiticConfig(r_wire=10.0, fidelity="exact")
        out = effective_conductance_matrix(g, cfg)
        np.testing.assert_array_equal(out, exact_effective_matrix(g, 10.0))

    def test_returns_copy_when_ideal(self):
        g = np.full((2, 2), G0)
        out = effective_conductance_matrix(g, ParasiticConfig.ideal())
        out[0, 0] = 0.0
        assert g[0, 0] == G0
