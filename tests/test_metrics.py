"""Tests for the paper's accuracy metrics (Eq. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import max_abs_error, paper_relative_error, scatter_points
from repro.errors import ValidationError


class TestPaperRelativeError:
    def test_zero_for_exact(self):
        x = np.array([1.0, -2.0, 3.0])
        assert paper_relative_error(x, x) == 0.0

    def test_known_value(self):
        # sum|dx| = 0.3, sum|x| = 3.0
        x = np.array([1.0, -2.0])
        xhat = np.array([1.1, -2.2])
        assert paper_relative_error(x, xhat) == pytest.approx(0.1)

    def test_l1_form_of_eq6(self):
        """Eq. 6's per-element square roots collapse to absolute values."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        xhat = x + rng.normal(size=50) * 0.1
        expected = np.sum(np.sqrt((x - xhat) ** 2)) / np.sum(np.sqrt(x**2))
        assert paper_relative_error(x, xhat) == pytest.approx(expected)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValidationError):
            paper_relative_error(np.zeros(3), np.ones(3))

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            paper_relative_error(np.ones(3), np.ones(4))

    @given(
        st.lists(
            # Snap tiny magnitudes to exact zero: scaling a near-denormal
            # by 1e-3 underflows into subnormal precision, which would
            # test float underflow rather than scale invariance.
            st.floats(min_value=-10, max_value=10).map(
                lambda v: 0.0 if abs(v) < 1e-9 else v
            ),
            min_size=1,
            max_size=20,
        ),
        st.floats(min_value=1e-3, max_value=1e3),
    )
    @settings(max_examples=40, deadline=None)
    def test_scale_invariant(self, values, scale):
        """Scaling both vectors leaves the relative error unchanged."""
        x = np.asarray(values)
        if np.sum(np.abs(x)) == 0.0:
            return
        xhat = x + 0.1
        a = paper_relative_error(x, xhat)
        b = paper_relative_error(scale * x, scale * xhat)
        assert a == pytest.approx(b, rel=1e-9)

    @given(st.integers(1, 30), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_non_negative(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n)
        if np.sum(np.abs(x)) == 0.0:
            return
        assert paper_relative_error(x, rng.normal(size=n)) >= 0.0


class TestMaxAbsError:
    def test_value(self):
        assert max_abs_error([1.0, 2.0], [1.5, 2.0]) == pytest.approx(0.5)


class TestScatterPoints:
    def test_shape_and_content(self):
        pts = scatter_points([1.0, 2.0], [1.1, 1.9])
        assert pts.shape == (2, 2)
        np.testing.assert_allclose(pts[:, 0], [1.0, 2.0])
        np.testing.assert_allclose(pts[:, 1], [1.1, 1.9])
