"""Golden-record regression fixtures: outputs pinned bit-for-bit.

The equivalence suite (``test_kernel_equivalence.py``) proves the three
kernel shapes agree with *each other*; these tests pin them against
*committed history*, so a change that drifts all paths in lockstep — a
reordered reduction, a new margin, an "equivalent" formula — still
trips CI. Two records are pinned:

- the tier-1-scale Fig. 7 accuracy sweep through
  ``run_trials_batched`` (which the equivalence suite ties bit-for-bit
  to the scalar path, so this fixture transitively pins both);
- one ``repro.serve`` mixed-traffic run through the canonical service
  kernel (``run_sequential``, bit-identical to concurrent
  ``SolverService`` execution by the service's determinism contract).

Intentional numerical changes regenerate the fixtures with::

    PYTHONPATH=src python -m pytest tests/test_golden_records.py --regen-goldens

then commit the updated ``tests/goldens/*.npz`` alongside the change
that explains them.

The fixtures are platform-pinned: bit-exact floats are only promised on
one BLAS/LAPACK stack, so the comparison tolerates nothing on CI's
pinned environment but documents a relaxed fallback (1e-10) for other
platforms via ``GOLDEN_STRICT``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import run_trials_batched
from repro.core.blockamc import BlockAMCSolver
from repro.core.multistage import MultiStageSolver
from repro.core.original import OriginalAMCSolver
from repro.serve.service import ServiceConfig, run_sequential
from repro.workloads.matrices import random_vector, wishart_matrix
from repro.workloads.traffic import mixed_traffic

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Set GOLDEN_STRICT=0 to compare with 1e-10 tolerance instead of
#: bit-for-bit (for running the suite on a different BLAS stack).
STRICT = os.environ.get("GOLDEN_STRICT", "1") != "0"

#: Tier-1-scale Fig. 7 configuration (matches benchmarks/bench_perf_engine).
FIG7_SIZES = (8, 16, 32)
FIG7_TRIALS = 3
FIG7_SEED = 70

#: Mixed-traffic serve run: enough requests to hit every matrix family,
#: repeated hot keys (cache hits), and multi-request coalescing.
TRAFFIC_REQUESTS = 24
TRAFFIC_SEED = 123

#: Two-stage sweep: one prepared tree per size, a multi-RHS batch each
#: (pins the matrix-valued recursion of ``PreparedMultiStage.solve_many``).
TWOSTAGE_SIZES = (8, 11, 16)
TWOSTAGE_RHS = 4
TWOSTAGE_SEED = 35


def _assert_float_match(actual: np.ndarray, golden: np.ndarray, label: str):
    if STRICT:
        assert np.array_equal(actual, golden), f"{label} drifted from golden record"
    else:
        assert np.max(np.abs(actual - golden)) < 1e-10, label


def _fig7_payload() -> dict[str, np.ndarray]:
    config = HardwareConfig.paper_variation()
    records = run_trials_batched(
        {
            "original-amc": OriginalAMCSolver(config),
            "blockamc-1stage": BlockAMCSolver(config),
        },
        lambda n, rng: wishart_matrix(n, rng),
        FIG7_SIZES,
        FIG7_TRIALS,
        seed=FIG7_SEED,
    )
    return {
        "solver": np.array([r.solver for r in records]),
        "size": np.array([r.size for r in records]),
        "trial": np.array([r.trial for r in records]),
        "relative_error": np.array([r.relative_error for r in records]),
        "saturated": np.array([r.saturated for r in records]),
        "analog_time_s": np.array([r.analog_time_s for r in records]),
    }


def _serve_payload() -> dict[str, np.ndarray]:
    requests = mixed_traffic(TRAFFIC_REQUESTS, seed=TRAFFIC_SEED)
    results, metrics = run_sequential(requests, ServiceConfig())
    lengths = np.array([r.x.size for r in results])
    return {
        "lengths": lengths,
        "x": np.concatenate([r.x for r in results]),
        "reference": np.concatenate([r.reference for r in results]),
        "relative_error": np.array([r.relative_error for r in results]),
        "input_scale": np.array([r.metadata["input_scale"] for r in results]),
        "saturated": np.array([r.saturated for r in results]),
    }


def _check_or_regen(payload: dict, path: Path, regen: bool):
    if regen:
        GOLDEN_DIR.mkdir(exist_ok=True)
        np.savez(path, **payload)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden record {path}; run with --regen-goldens to create it"
    )
    golden = np.load(path, allow_pickle=False)
    assert sorted(golden.files) == sorted(payload), "golden record schema changed"
    for key, actual in payload.items():
        recorded = golden[key]
        assert actual.shape == recorded.shape, key
        if actual.dtype.kind == "f":
            _assert_float_match(actual, recorded, key)
        else:
            assert np.array_equal(actual, recorded), key


def _twostage_payload() -> dict[str, np.ndarray]:
    config = HardwareConfig.paper_variation()
    solver = MultiStageSolver(config, stages=2)
    lengths, xs, refs, rel, sat, times = [], [], [], [], [], []
    for size in TWOSTAGE_SIZES:
        matrix = wishart_matrix(size, rng=TWOSTAGE_SEED + size)
        rhs = [random_vector(size, rng=100 * size + i) for i in range(TWOSTAGE_RHS)]
        prepared = solver.prepare(matrix, rng=TWOSTAGE_SEED)
        for result in prepared.solve_many(rhs, np.random.default_rng(9)):
            lengths.append(result.x.size)
            xs.append(result.x)
            refs.append(result.reference)
            rel.append(result.relative_error)
            sat.append(result.saturated)
            times.append(result.analog_time_s)
    return {
        "lengths": np.array(lengths),
        "x": np.concatenate(xs),
        "reference": np.concatenate(refs),
        "relative_error": np.array(rel),
        "saturated": np.array(sat),
        "analog_time_s": np.array(times),
    }


def _serve_multistage_payload() -> dict[str, np.ndarray]:
    """A coalesced mixed 1-/2-stage serve run through the canonical kernel."""
    requests = mixed_traffic(
        TRAFFIC_REQUESTS,
        unique_matrices=4,
        sizes=(12, 16),
        solvers=("blockamc-1stage", "blockamc-2stage"),
        seed=TRAFFIC_SEED + 1,
    )
    results, _ = run_sequential(requests, ServiceConfig())
    return {
        "solver": np.array([r.solver for r in results]),
        "lengths": np.array([r.x.size for r in results]),
        "x": np.concatenate([r.x for r in results]),
        "reference": np.concatenate([r.reference for r in results]),
        "relative_error": np.array([r.relative_error for r in results]),
        "saturated": np.array([r.saturated for r in results]),
    }


class TestFig7Golden:
    def test_sweep_matches_golden(self, regen_goldens):
        _check_or_regen(
            _fig7_payload(), GOLDEN_DIR / "fig7_sweep.npz", regen_goldens
        )

    def test_sweep_is_deterministic(self):
        """The payload is a pure function of its seed (golden soundness)."""
        a = _fig7_payload()
        b = _fig7_payload()
        for key in a:
            assert np.array_equal(a[key], b[key]), key


class TestServeTrafficGolden:
    def test_mixed_traffic_matches_golden(self, regen_goldens):
        _check_or_regen(
            _serve_payload(), GOLDEN_DIR / "serve_mixed_traffic.npz", regen_goldens
        )


class TestTwoStageGolden:
    def test_sweep_matches_golden(self, regen_goldens):
        _check_or_regen(
            _twostage_payload(), GOLDEN_DIR / "twostage_sweep.npz", regen_goldens
        )

    def test_sweep_is_deterministic(self):
        """The payload is a pure function of its seeds (golden soundness)."""
        a = _twostage_payload()
        b = _twostage_payload()
        for key in a:
            assert np.array_equal(a[key], b[key]), key

    def test_coalesced_serve_matches_golden(self, regen_goldens):
        _check_or_regen(
            _serve_multistage_payload(),
            GOLDEN_DIR / "serve_multistage_traffic.npz",
            regen_goldens,
        )
