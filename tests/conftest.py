"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help=(
            "rewrite tests/goldens/*.npz from current engine output instead "
            "of comparing against them (use after an intentional numerical "
            "change, then commit the updated fixtures)"
        ),
    )


@pytest.fixture
def regen_goldens(request) -> bool:
    """True when the run should regenerate golden fixtures."""
    return request.config.getoption("--regen-goldens")

from repro.amc.config import HardwareConfig
from repro.crossbar.array import CrossbarArray, ProgrammingConfig
from repro.crossbar.mapping import normalize_matrix
from repro.workloads.matrices import (
    diagonally_dominant_matrix,
    random_vector,
    wishart_matrix,
)


@pytest.fixture
def rng():
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_wishart(rng):
    """An 8x8 Wishart matrix (SPD, well conditioned)."""
    return wishart_matrix(8, rng)


@pytest.fixture
def small_dominant(rng):
    """A 6x6 strictly diagonally dominant matrix."""
    return diagonally_dominant_matrix(6, rng)


@pytest.fixture
def small_b(rng):
    """A random 8-element right-hand side."""
    return random_vector(8, rng)


@pytest.fixture
def ideal_hardware():
    """Mathematically perfect hardware configuration."""
    return HardwareConfig.ideal()


@pytest.fixture
def ideal_array(small_wishart, rng):
    """An ideally programmed crossbar pair for the normalized Wishart."""
    normalized, _ = normalize_matrix(small_wishart)
    return CrossbarArray.program(
        normalized, ProgrammingConfig.ideal(), rng, pre_normalized=True
    )
