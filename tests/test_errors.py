"""The exception hierarchy contract: everything derives from ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ValidationError,
    errors.DeviceError,
    errors.ProgrammingError,
    errors.MappingError,
    errors.CircuitError,
    errors.SingularCircuitError,
    errors.ConvergenceError,
    errors.PartitionError,
    errors.SolverError,
    errors.ScheduleError,
    errors.CostModelError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_derives_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_validation_error_is_value_error():
    """Callers using plain ValueError handling must still catch it."""
    assert issubclass(errors.ValidationError, ValueError)


def test_programming_error_is_device_error():
    assert issubclass(errors.ProgrammingError, errors.DeviceError)


def test_singular_circuit_error_is_circuit_error():
    assert issubclass(errors.SingularCircuitError, errors.CircuitError)


def test_catching_base_class():
    with pytest.raises(errors.ReproError):
        raise errors.SolverError("boom")
