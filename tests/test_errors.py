"""The exception hierarchy contract: everything derives from ReproError,
and every class carries a ``retryable`` classification."""

from concurrent.futures import BrokenExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ValidationError,
    errors.DeviceError,
    errors.ProgrammingError,
    errors.MappingError,
    errors.CircuitError,
    errors.SingularCircuitError,
    errors.ConvergenceError,
    errors.PartitionError,
    errors.SolverError,
    errors.ScheduleError,
    errors.CostModelError,
    errors.ServeError,
    errors.OverloadedError,
    errors.ServiceOverloadedError,
    errors.DeadlineExceededError,
    errors.CircuitOpenError,
    errors.ShardFailedError,
    errors.ServiceClosedError,
    errors.CampaignError,
]

#: Transient failures: re-submitting the same request later may succeed.
RETRYABLE = {
    errors.OverloadedError,
    errors.ServiceOverloadedError,
    errors.DeadlineExceededError,
    errors.CircuitOpenError,
    errors.ShardFailedError,
}


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_derives_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_validation_error_is_value_error():
    """Callers using plain ValueError handling must still catch it."""
    assert issubclass(errors.ValidationError, ValueError)


def test_programming_error_is_device_error():
    assert issubclass(errors.ProgrammingError, errors.DeviceError)


def test_singular_circuit_error_is_circuit_error():
    assert issubclass(errors.SingularCircuitError, errors.CircuitError)


def test_queue_rejection_is_an_overload():
    """Catching OverloadedError must cover backpressure rejections too."""
    assert issubclass(errors.ServiceOverloadedError, errors.OverloadedError)


def test_catching_base_class():
    with pytest.raises(errors.ReproError):
        raise errors.SolverError("boom")


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_retryable_classification(exc):
    assert exc.retryable is (exc in RETRYABLE)
    assert errors.is_retryable(exc("boom")) is (exc in RETRYABLE)


def test_retry_after_hints():
    assert errors.OverloadedError("full").retry_after_s is None
    assert errors.OverloadedError("full", retry_after_s=1.5).retry_after_s == 1.5
    assert errors.CircuitOpenError("open", retry_after_s=0.2).retry_after_s == 0.2


def test_is_retryable_covers_stdlib_faults():
    assert errors.is_retryable(BrokenProcessPool())
    assert errors.is_retryable(BrokenExecutor())
    assert errors.is_retryable(TimeoutError())
    assert not errors.is_retryable(ValueError("nope"))
    assert not errors.is_retryable(RuntimeError("nope"))
