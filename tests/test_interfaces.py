"""Tests for DAC/ADC/S&H interface models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amc.config import ConverterConfig, SampleHoldConfig
from repro.amc.interfaces import ADC, DAC, SampleHold


class TestQuantizers:
    def test_ideal_converter_transparent(self):
        dac = DAC(ConverterConfig.ideal())
        v = np.array([0.123456789, -0.987654321])
        np.testing.assert_array_equal(dac.convert(v), v)

    def test_quantization_error_bounded(self):
        cfg = ConverterConfig(dac_bits=8, adc_bits=8, v_fs=1.0)
        lsb = 2.0 / 256
        v = np.linspace(-0.99, 0.99, 101)
        out = DAC(cfg).convert(v)
        assert np.max(np.abs(out - v)) <= lsb / 2 + 1e-15

    def test_clipping_at_full_scale(self):
        cfg = ConverterConfig(adc_bits=8, v_fs=1.0)
        out = ADC(cfg).convert(np.array([2.5, -3.0]))
        assert out[0] <= 1.0
        assert out[1] >= -1.0

    def test_idempotent(self):
        cfg = ConverterConfig(dac_bits=6, v_fs=1.0)
        dac = DAC(cfg)
        v = np.linspace(-1, 1, 37)
        once = dac.convert(v)
        np.testing.assert_array_equal(dac.convert(once), once)

    def test_higher_resolution_smaller_error(self):
        v = np.linspace(-0.9, 0.9, 101)
        err4 = np.max(np.abs(DAC(ConverterConfig(dac_bits=4)).convert(v) - v))
        err12 = np.max(np.abs(DAC(ConverterConfig(dac_bits=12)).convert(v) - v))
        assert err12 < err4

    @given(
        st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=20),
        st.integers(min_value=2, max_value=14),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_error_within_half_lsb(self, values, bits):
        cfg = ConverterConfig(adc_bits=bits, v_fs=1.0)
        v = np.asarray(values)
        out = ADC(cfg).convert(v)
        lsb = 2.0 / (2**bits)
        assert np.max(np.abs(out - v)) <= lsb / 2 + 1e-12

    def test_zero_maps_to_zero(self):
        """Mid-tread quantizer: 0 V is always a code."""
        cfg = ConverterConfig(adc_bits=5)
        assert ADC(cfg).convert(np.array([0.0]))[0] == 0.0


class TestSampleHold:
    def test_transparent_by_default(self):
        snh = SampleHold(SampleHoldConfig())
        v = np.array([0.3, -0.2])
        np.testing.assert_array_equal(snh.transfer(v), v)

    def test_gain_error(self):
        snh = SampleHold(SampleHoldConfig(gain_error=0.01))
        v = np.array([1.0])
        assert snh.transfer(v)[0] == pytest.approx(1.01)

    def test_noise_statistics(self):
        snh = SampleHold(SampleHoldConfig(noise_sigma_v=1e-3))
        v = np.zeros(20_000)
        out = snh.transfer(v, rng=0)
        assert float(np.std(out)) == pytest.approx(1e-3, rel=0.05)

    def test_noise_reproducible(self):
        snh = SampleHold(SampleHoldConfig(noise_sigma_v=1e-3))
        a = snh.transfer(np.zeros(8), rng=1)
        b = snh.transfer(np.zeros(8), rng=1)
        np.testing.assert_array_equal(a, b)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SampleHoldConfig(gain_error=1.5)
        with pytest.raises(ValueError):
            SampleHoldConfig(noise_sigma_v=-1.0)
