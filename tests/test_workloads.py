"""Tests for the workload generators and experiment suites."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads.matrices import (
    diagonally_dominant_matrix,
    random_invertible_matrix,
    random_vector,
    toeplitz_matrix,
    wishart_matrix,
)
from repro.workloads.suites import PAPER_SIZES, get_suite, list_suites


class TestWishart:
    def test_symmetric(self):
        a = wishart_matrix(10, rng=0)
        np.testing.assert_allclose(a, a.T)

    def test_positive_definite(self):
        a = wishart_matrix(10, rng=1)
        assert np.min(np.linalg.eigvalsh(a)) > 0.0

    def test_deterministic(self):
        np.testing.assert_array_equal(wishart_matrix(6, rng=2), wishart_matrix(6, rng=2))

    def test_aspect_controls_conditioning(self):
        tall = wishart_matrix(32, rng=3, aspect=8.0)
        square = wishart_matrix(32, rng=3, aspect=1.05)
        assert np.linalg.cond(tall) < np.linalg.cond(square)

    def test_aspect_below_one_rejected(self):
        with pytest.raises(ValidationError):
            wishart_matrix(4, rng=0, aspect=0.5)

    def test_bad_size(self):
        with pytest.raises(ValidationError):
            wishart_matrix(0)


class TestToeplitz:
    def test_constant_diagonals(self):
        a = toeplitz_matrix(8, rng=0)
        for k in range(-7, 8):
            diag = np.diagonal(a, k)
            assert np.allclose(diag, diag[0])

    def test_symmetric_by_default(self):
        a = toeplitz_matrix(8, rng=1)
        np.testing.assert_allclose(a, a.T)

    def test_asymmetric_option(self):
        a = toeplitz_matrix(8, rng=2, symmetric=False)
        assert not np.allclose(a, a.T)

    def test_unit_diagonal(self):
        a = toeplitz_matrix(8, rng=3)
        np.testing.assert_allclose(np.diag(a), 1.0)

    def test_conditioning_grows_with_size(self):
        """The property behind Fig. 7(b): large Toeplitz systems are
        much harder than small ones."""
        small = np.linalg.cond(toeplitz_matrix(8, rng=4))
        large = np.linalg.cond(toeplitz_matrix(256, rng=4))
        assert large > 5 * small

    def test_invertible_across_sizes(self):
        for n in (8, 32, 128):
            a = toeplitz_matrix(n, rng=5)
            assert np.linalg.matrix_rank(a) == n


class TestOtherGenerators:
    def test_dominant_strictly_dominant(self):
        a = diagonally_dominant_matrix(12, rng=0)
        off = np.sum(np.abs(a), axis=1) - np.abs(np.diag(a))
        assert np.all(np.abs(np.diag(a)) > off)

    def test_dominant_margin_validated(self):
        with pytest.raises(ValidationError):
            diagonally_dominant_matrix(4, rng=0, margin=1.0)

    def test_random_invertible_condition_bounded(self):
        a = random_invertible_matrix(8, rng=1, condition_cap=1e4)
        assert np.linalg.cond(a) <= 1e4

    def test_random_vector_in_range(self):
        v = random_vector(100, rng=2, low=-0.5, high=0.5)
        assert np.all(v >= -0.5) and np.all(v < 0.5)
        assert np.any(v != 0.0)

    def test_random_vector_bad_range(self):
        with pytest.raises(ValidationError):
            random_vector(4, rng=0, low=1.0, high=0.0)


class TestSuites:
    def test_paper_sizes(self):
        assert PAPER_SIZES == (8, 16, 32, 64, 128, 256, 512)

    def test_all_figures_covered(self):
        names = list_suites()
        assert {
            "fig6-ideal-mapping",
            "fig7-wishart",
            "fig7-toeplitz",
            "fig8-twostage",
            "fig9-wishart",
            "fig9-toeplitz",
        } <= set(names)

    def test_quick_vs_paper_scale(self):
        quick = get_suite("fig7-wishart", quick=True)
        full = get_suite("fig7-wishart", quick=False)
        assert max(quick.sizes) < max(full.sizes)
        assert quick.trials < full.trials
        assert full.trials == 40  # the paper's trial count

    def test_suite_factories_work(self):
        suite = get_suite("fig9-toeplitz")
        matrix = suite.matrix_factory(8, np.random.default_rng(0))
        assert matrix.shape == (8, 8)
        hardware = suite.hardware_factory()
        assert hardware.parasitics.r_wire == 1.0

    def test_unknown_suite(self):
        with pytest.raises(ValidationError):
            get_suite("fig99")
