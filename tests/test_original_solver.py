"""Tests for the monolithic original-AMC baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amc.config import HardwareConfig
from repro.core.original import OriginalAMCSolver
from repro.workloads.matrices import (
    diagonally_dominant_matrix,
    random_vector,
    wishart_matrix,
)


class TestIdealExactness:
    def test_matches_numpy_solve(self):
        matrix = wishart_matrix(8, rng=0)
        b = random_vector(8, rng=1)
        result = OriginalAMCSolver(HardwareConfig.ideal()).solve(matrix, b, rng=2)
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-9, atol=1e-11)

    @given(n=st.integers(min_value=2, max_value=12), seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_exact(self, n, seed):
        rng = np.random.default_rng(seed)
        matrix = diagonally_dominant_matrix(n, rng)
        b = random_vector(n, rng)
        result = OriginalAMCSolver(HardwareConfig.ideal()).solve(matrix, b, rng=seed)
        np.testing.assert_allclose(result.x, result.reference, rtol=1e-7, atol=1e-9)


class TestTelemetry:
    def test_single_inv_operation(self):
        matrix = wishart_matrix(6, rng=3)
        result = OriginalAMCSolver(HardwareConfig.ideal()).solve(
            matrix, random_vector(6, rng=4), rng=5
        )
        assert result.operation_counts == {"inv": 1}
        assert result.operations[0].rows == 6

    def test_full_size_periphery(self):
        """The baseline needs n of every periphery component — the cost
        the macro halves."""
        matrix = wishart_matrix(6, rng=6)
        result = OriginalAMCSolver(HardwareConfig.ideal()).solve(
            matrix, random_vector(6, rng=7), rng=8
        )
        assert result.metadata["opa_count"] == 6
        assert result.metadata["dac_count"] == 6
        assert result.metadata["adc_count"] == 6
        assert result.metadata["device_count"] == 72  # 2 * 36

    def test_solver_name(self):
        matrix = wishart_matrix(4, rng=9)
        result = OriginalAMCSolver(HardwareConfig.ideal()).solve(
            matrix, random_vector(4, rng=10), rng=11
        )
        assert result.solver == "original-amc"


class TestPrepared:
    def test_reuse(self):
        matrix = wishart_matrix(6, rng=12)
        prepared = OriginalAMCSolver(HardwareConfig.paper_variation()).prepare(
            matrix, rng=13
        )
        r1 = prepared.solve(random_vector(6, rng=14))
        r2 = prepared.solve(random_vector(6, rng=15))
        assert r1.relative_error < 1.0
        assert not np.allclose(r1.x, r2.x)

    def test_variation_held_fixed_across_solves(self):
        """Programming noise is drawn at prepare time, not per solve."""
        matrix = wishart_matrix(6, rng=16)
        prepared = OriginalAMCSolver(HardwareConfig.paper_variation()).prepare(
            matrix, rng=17
        )
        b = random_vector(6, rng=18)
        r1 = prepared.solve(b, rng=19)
        r2 = prepared.solve(b, rng=19)
        np.testing.assert_array_equal(r1.x, r2.x)
