"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.validation import (
    check_in_range,
    check_matrix,
    check_positive,
    check_probability,
    check_square_matrix,
    check_vector,
)


class TestCheckMatrix:
    def test_accepts_list_of_lists(self):
        out = check_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-D"):
            check_matrix([1, 2, 3])

    def test_rejects_3d(self):
        with pytest.raises(ValidationError, match="2-D"):
            check_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_matrix(np.zeros((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_matrix([[1.0, np.nan], [0.0, 1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_matrix([[1.0, np.inf], [0.0, 1.0]])

    def test_uses_argument_name_in_message(self):
        with pytest.raises(ValidationError, match="my_matrix"):
            check_matrix([1.0], "my_matrix")


class TestCheckSquareMatrix:
    def test_accepts_square(self):
        out = check_square_matrix(np.eye(3))
        assert out.shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError, match="square"):
            check_square_matrix(np.zeros((2, 3)))


class TestCheckVector:
    def test_accepts_list(self):
        out = check_vector([1, 2, 3])
        assert out.shape == (3,)

    def test_flattens_column_vector(self):
        out = check_vector(np.ones((4, 1)))
        assert out.shape == (4,)

    def test_flattens_row_vector(self):
        out = check_vector(np.ones((1, 4)))
        assert out.shape == (4,)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="1-D"):
            check_vector(np.ones((2, 3)))

    def test_size_enforced(self):
        with pytest.raises(ValidationError, match="length 5"):
            check_vector([1.0, 2.0], size=5)

    def test_size_accepted(self):
        assert check_vector([1.0, 2.0], size=2).size == 2

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_vector([np.nan])


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5) == 2.5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive(0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1.0)

    def test_rejects_inf_by_default(self):
        with pytest.raises(ValidationError, match="finite"):
            check_positive(np.inf)

    def test_allows_inf_when_enabled(self):
        assert check_positive(np.inf, allow_inf=True) == np.inf

    def test_rejects_nan_even_with_allow_inf(self):
        with pytest.raises(ValidationError):
            check_positive(np.nan, allow_inf=True)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="real number"):
            check_positive("3")

    @given(st.floats(min_value=1e-300, max_value=1e300))
    def test_accepts_any_positive_float(self, value):
        assert check_positive(value) == value


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, 0.0, 1.0) == 0.0
        assert check_in_range(1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValidationError, match=r"\[0.0, 1.0\]"):
            check_in_range(1.5, 0.0, 1.0)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_in_range(None, 0.0, 1.0)


class TestCheckProbability:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_accepts_unit_interval(self, p):
        assert check_probability(p) == p

    @pytest.mark.parametrize("bad", [-0.1, 1.1, 2.0])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValidationError):
            check_probability(bad)
