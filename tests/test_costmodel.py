"""Tests for the area/power cost model — reproduces Fig. 10's numbers."""

import pytest

from repro.analysis.costmodel import (
    ComponentCosts,
    component_counts,
    savings_vs_original,
    solver_cost_breakdown,
)
from repro.errors import CostModelError


class TestCounts:
    def test_original(self):
        counts = component_counts("original", 512)
        assert counts.opa_count == 512
        assert counts.dac_count == 512
        assert counts.adc_count == 512
        assert counts.cell_count == 2 * 512 * 512

    def test_one_stage_halves_periphery(self):
        counts = component_counts("blockamc-1stage", 512)
        assert counts.opa_count == 256
        assert counts.dac_count == 256
        assert counts.adc_count == 256

    def test_two_stage_opa_count_back_to_full(self):
        """'OPAs are separately deployed for the first-stage INV and MVM,
        resulting in the same count of OPAs' (Sec. IV-B)."""
        counts = component_counts("blockamc-2stage", 512)
        assert counts.opa_count == 512
        assert counts.dac_count == 256

    def test_same_cell_count_everywhere(self):
        cells = {
            component_counts(arch, 512).cell_count
            for arch in ("original", "blockamc-1stage", "blockamc-2stage")
        }
        assert len(cells) == 1

    def test_unknown_architecture(self):
        with pytest.raises(CostModelError):
            component_counts("systolic", 512)

    def test_size_too_small(self):
        with pytest.raises(CostModelError):
            component_counts("original", 1)


class TestPaperTotals:
    """The headline numbers of Fig. 10 at n = 512."""

    def test_total_areas(self):
        areas = {
            arch: solver_cost_breakdown(arch, 512).total_area_mm2
            for arch in ("original", "blockamc-1stage", "blockamc-2stage")
        }
        assert areas["original"] == pytest.approx(0.01577, rel=0.02)
        assert areas["blockamc-1stage"] == pytest.approx(0.00807, rel=0.02)
        assert areas["blockamc-2stage"] == pytest.approx(0.01383, rel=0.02)

    def test_area_savings(self):
        savings = savings_vs_original(512)
        assert savings["blockamc-1stage"]["area"] == pytest.approx(0.4883, abs=0.01)
        assert savings["blockamc-2stage"]["area"] == pytest.approx(0.123, abs=0.01)

    def test_power_savings(self):
        savings = savings_vs_original(512)
        assert savings["blockamc-1stage"]["power"] == pytest.approx(0.40, abs=0.01)
        assert savings["blockamc-2stage"]["power"] == pytest.approx(0.374, abs=0.01)

    def test_opa_power_is_eq7(self):
        """Unit OPA power equals Vs * Iq of the default op-amp config."""
        from repro.amc.config import OpAmpConfig

        costs = ComponentCosts.paper_calibrated()
        assert costs.power_opa == pytest.approx(OpAmpConfig().static_power, rel=1e-6)


class TestBreakdownStructure:
    def test_components_present(self):
        breakdown = solver_cost_breakdown("original", 128)
        assert set(breakdown.area_by_component) == {"OPA", "DAC", "ADC", "RRAM"}
        assert set(breakdown.power_by_component) == {"OPA", "DAC", "ADC", "RRAM"}

    def test_totals_are_sums(self):
        breakdown = solver_cost_breakdown("blockamc-1stage", 128)
        assert breakdown.total_area_mm2 == pytest.approx(
            sum(breakdown.area_by_component.values())
        )

    def test_area_scales_with_size(self):
        small = solver_cost_breakdown("original", 64).total_area_mm2
        large = solver_cost_breakdown("original", 256).total_area_mm2
        assert large > small

    def test_custom_costs(self):
        costs = ComponentCosts(
            area_opa=1.0,
            area_dac=1.0,
            area_adc=1.0,
            area_cell=1.0,
            power_opa=1.0,
            power_dac=1.0,
            power_adc=1.0,
            power_cell=1.0,
        )
        breakdown = solver_cost_breakdown("original", 4, costs)
        assert breakdown.area_by_component["OPA"] == 4.0
        assert breakdown.area_by_component["RRAM"] == 32.0

    def test_invalid_unit_cost(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            ComponentCosts(
                area_opa=0.0,
                area_dac=1.0,
                area_adc=1.0,
                area_cell=1.0,
                power_opa=1.0,
                power_dac=1.0,
                power_adc=1.0,
                power_cell=1.0,
            )
