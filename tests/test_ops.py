"""Tests for the MVM/INV primitives (algebraic and MNA fidelity paths)."""

import math

import numpy as np
import pytest

from repro.amc.config import HardwareConfig, OpAmpConfig
from repro.amc.ops import AMCOperations
from repro.crossbar.array import CrossbarArray
from repro.crossbar.parasitics import ParasiticConfig
from repro.errors import SolverError
from repro.workloads.matrices import diagonally_dominant_matrix


MATRIX = np.array([[1.0, -0.3], [0.2, 0.8]])


def _array(matrix=MATRIX, rng=0):
    return CrossbarArray.program(matrix, rng=rng, pre_normalized=True)


class TestIdealOps:
    def test_mvm_matches_matrix_product(self):
        ops = AMCOperations(HardwareConfig.ideal())
        v = np.array([0.3, -0.1])
        result = ops.mvm(_array(), v)
        np.testing.assert_allclose(result.output, -MATRIX @ v, atol=1e-12)

    def test_inv_matches_solve(self):
        ops = AMCOperations(HardwareConfig.ideal())
        v = np.array([0.3, -0.1])
        result = ops.inv(_array(), v)
        np.testing.assert_allclose(result.output, -np.linalg.solve(MATRIX, v), atol=1e-12)

    def test_ideal_output_equals_output_for_ideal_hardware(self):
        ops = AMCOperations(HardwareConfig.ideal())
        v = np.array([0.3, -0.1])
        result = ops.inv(_array(), v)
        np.testing.assert_allclose(result.output, result.ideal_output, atol=1e-12)

    def test_input_scale_compensates_array_scale(self):
        """Storing A/s and scaling the input conductance by 1/s solves
        the unscaled system (the Schur renormalization trick)."""
        scale = 2.5
        arr = _array(MATRIX / scale)
        ops = AMCOperations(HardwareConfig.ideal())
        v = np.array([0.3, -0.1])
        result = ops.inv(arr, v, input_scale=1.0 / scale)
        np.testing.assert_allclose(result.output, -np.linalg.solve(MATRIX, v), atol=1e-12)

    def test_inv_requires_square(self):
        arr = CrossbarArray.program(np.ones((2, 3)) * 0.5, rng=0, pre_normalized=True)
        ops = AMCOperations(HardwareConfig.ideal())
        with pytest.raises(SolverError, match="square"):
            ops.inv(arr, np.zeros(2))

    def test_singular_matrix_raises(self):
        arr = _array(np.array([[1.0, 1.0], [1.0, 1.0]]))
        ops = AMCOperations(HardwareConfig.ideal())
        with pytest.raises(SolverError, match="singular"):
            ops.inv(arr, np.array([0.1, 0.2]))


class TestFiniteGain:
    def test_mvm_attenuated(self):
        cfg = HardwareConfig(opamp=OpAmpConfig(open_loop_gain=100.0, input_offset_sigma_v=0.0))
        ops = AMCOperations(cfg)
        v = np.array([0.3, -0.1])
        result = ops.mvm(_array(), v)
        assert np.all(np.abs(result.output) < np.abs(result.ideal_output))

    def test_error_shrinks_with_gain(self):
        def error(gain):
            cfg = HardwareConfig(
                opamp=OpAmpConfig(open_loop_gain=gain, input_offset_sigma_v=0.0)
            )
            result = AMCOperations(cfg).inv(_array(), np.array([0.3, -0.1]))
            return float(np.max(np.abs(result.error_vector)))

        assert error(1e6) < error(1e3) < error(1e1)


class TestOffsets:
    def test_offset_perturbs_output(self):
        cfg = HardwareConfig(
            opamp=OpAmpConfig(open_loop_gain=math.inf, input_offset_sigma_v=5e-3)
        )
        ops = AMCOperations(cfg)
        result = ops.inv(_array(), np.array([0.3, -0.1]), rng=0)
        assert np.max(np.abs(result.error_vector)) > 0.0

    def test_offset_reproducible(self):
        cfg = HardwareConfig(
            opamp=OpAmpConfig(open_loop_gain=math.inf, input_offset_sigma_v=5e-3)
        )
        ops = AMCOperations(cfg)
        a = ops.inv(_array(), np.array([0.3, -0.1]), rng=7).output
        b = ops.inv(_array(), np.array([0.3, -0.1]), rng=7).output
        np.testing.assert_array_equal(a, b)

    def test_larger_loading_amplifies_offset(self):
        """The offset error grows with the array's conductance loading —
        the size-dependence behind Fig. 6(c)."""
        cfg = HardwareConfig(
            opamp=OpAmpConfig(open_loop_gain=math.inf, input_offset_sigma_v=1e-3)
        )
        ops = AMCOperations(cfg)
        rng = np.random.default_rng(0)
        # Normalized Wishart row loading grows ~sqrt(n) with size
        # (diagonally dominant matrices would not: their normalized row
        # sums are constant).
        from repro.workloads.matrices import wishart_matrix

        small = wishart_matrix(4, rng)
        large = wishart_matrix(64, rng)

        def mvm_error(matrix):
            normalized = matrix / np.max(np.abs(matrix))
            arr = CrossbarArray.program(normalized, rng=1, pre_normalized=True)
            result = ops.mvm(arr, np.full(arr.shape[1], 0.2), rng=2)
            return float(np.mean(np.abs(result.error_vector)))

        assert mvm_error(large) > mvm_error(small)


class TestSaturation:
    def test_saturated_flag(self):
        cfg = HardwareConfig(
            opamp=OpAmpConfig(open_loop_gain=math.inf, v_sat=0.1, input_offset_sigma_v=0.0),
        )
        ops = AMCOperations(cfg)
        result = ops.inv(_array(), np.array([0.5, -0.5]))
        assert result.saturated
        assert np.max(np.abs(result.output)) <= 0.1

    def test_not_saturated_within_rails(self):
        cfg = HardwareConfig(
            opamp=OpAmpConfig(open_loop_gain=math.inf, v_sat=10.0, input_offset_sigma_v=0.0),
        )
        result = AMCOperations(cfg).inv(_array(), np.array([0.1, -0.1]))
        assert not result.saturated


class TestTelemetry:
    def test_fields(self):
        ops = AMCOperations(HardwareConfig.ideal())
        result = ops.mvm(_array(), np.array([0.1, 0.2]), label="tagged")
        assert result.kind == "mvm"
        assert result.label == "tagged"
        assert result.rows == 2 and result.cols == 2
        assert result.opa_count == 2
        assert result.device_count == 8
        assert result.settling_time_s > 0.0

    def test_unstable_inv_reports_infinite_settling(self):
        arr = _array(np.array([[-1.0, 0.0], [0.0, -1.0]]))
        ops = AMCOperations(HardwareConfig.ideal())
        result = ops.inv(arr, np.array([0.1, 0.1]))
        assert math.isinf(result.settling_time_s)


class TestMNACrossValidation:
    @pytest.mark.parametrize("r_wire", [0.0, 2.0])
    @pytest.mark.parametrize("gain", [math.inf, 1e4])
    def test_algebraic_matches_mna(self, r_wire, gain):
        rng = np.random.default_rng(3)
        matrix = diagonally_dominant_matrix(4, rng)
        matrix = matrix / np.max(np.abs(matrix))
        arr = CrossbarArray.program(matrix, rng=4, pre_normalized=True)
        v = rng.uniform(-0.3, 0.3, 4)
        fidelity = "exact" if r_wire > 0 else "none"
        cfg = HardwareConfig(
            opamp=OpAmpConfig(open_loop_gain=gain, input_offset_sigma_v=2e-3),
            parasitics=ParasiticConfig(r_wire=r_wire, fidelity=fidelity),
        )
        alg = AMCOperations(cfg)
        mna = AMCOperations(cfg.with_(use_mna=True))
        for op_name in ("mvm", "inv"):
            out_a = getattr(alg, op_name)(arr, v, rng=np.random.default_rng(9)).output
            out_m = getattr(mna, op_name)(arr, v, rng=np.random.default_rng(9)).output
            np.testing.assert_allclose(out_a, out_m, atol=5e-5)
