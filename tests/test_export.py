"""Tests for the CSV exporters."""

import csv

import pytest

from repro.analysis.accuracy import AccuracyRecord, accuracy_sweep
from repro.analysis.export import records_to_csv, sweep_to_csv
from repro.errors import ValidationError


RECORDS = [
    AccuracyRecord("solver-a", 8, 0, 0.1, False, 1e-6),
    AccuracyRecord("solver-a", 8, 1, 0.2, True, 1e-6),
    AccuracyRecord("solver-b", 8, 0, 0.05, False, 2e-6),
]


class TestRecordsToCsv:
    def test_round_trip(self, tmp_path):
        path = records_to_csv(RECORDS, tmp_path / "records.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[0]["solver"] == "solver-a"
        assert float(rows[1]["relative_error"]) == 0.2
        assert rows[1]["saturated"] == "1"

    def test_creates_parent_dirs(self, tmp_path):
        path = records_to_csv(RECORDS, tmp_path / "deep" / "dir" / "r.csv")
        assert path.exists()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            records_to_csv([], tmp_path / "r.csv")


class TestSweepToCsv:
    def test_round_trip(self, tmp_path):
        table = accuracy_sweep(RECORDS)
        path = sweep_to_csv(table, tmp_path / "sweep.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2  # two solvers, one size each
        by_solver = {row["solver"]: row for row in rows}
        assert float(by_solver["solver-a"]["mean_relative_error"]) == pytest.approx(0.15)

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            sweep_to_csv({}, tmp_path / "sweep.csv")
