"""Tests for the digital reference solvers."""

import numpy as np
import pytest

from repro.core.digital import (
    DigitalDirectSolver,
    conjugate_gradient,
    gauss_seidel,
    gmres,
    jacobi,
    richardson,
)
from repro.errors import ConvergenceError, SolverError
from repro.workloads.matrices import (
    diagonally_dominant_matrix,
    random_vector,
    wishart_matrix,
)


@pytest.fixture
def spd_system():
    rng = np.random.default_rng(0)
    a = wishart_matrix(12, rng)
    b = random_vector(12, rng)
    return a, b, np.linalg.solve(a, b)


@pytest.fixture
def dominant_system():
    rng = np.random.default_rng(1)
    a = diagonally_dominant_matrix(10, rng, margin=1.5)
    b = random_vector(10, rng)
    return a, b, np.linalg.solve(a, b)


class TestDirect:
    def test_exact(self, spd_system):
        a, b, x = spd_system
        result = DigitalDirectSolver().solve(a, b)
        np.testing.assert_allclose(result.x, x)
        assert result.relative_error == 0.0

    def test_singular_raises(self):
        with pytest.raises(SolverError):
            DigitalDirectSolver().solve(np.ones((3, 3)), np.ones(3))


class TestStationaryMethods:
    def test_jacobi_converges_on_dominant(self, dominant_system):
        a, b, x = dominant_system
        result = jacobi(a, b, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, x, rtol=1e-8)

    def test_gauss_seidel_converges_on_dominant(self, dominant_system):
        a, b, x = dominant_system
        result = gauss_seidel(a, b, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, x, rtol=1e-8)

    def test_gauss_seidel_fewer_iterations_than_jacobi(self, dominant_system):
        a, b, _ = dominant_system
        assert gauss_seidel(a, b).iterations <= jacobi(a, b).iterations

    def test_richardson_on_spd(self, spd_system):
        a, b, x = spd_system
        result = richardson(a, b, tol=1e-10, max_iter=100_000)
        assert result.converged
        np.testing.assert_allclose(result.x, x, rtol=1e-6)

    def test_richardson_rejects_indefinite_auto_omega(self):
        with pytest.raises(SolverError):
            richardson(np.diag([1.0, -1.0]), np.ones(2))

    def test_jacobi_zero_diagonal_rejected(self):
        a = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(SolverError):
            jacobi(a, np.ones(2))

    @pytest.mark.filterwarnings("ignore:overflow")
    def test_jacobi_divergence_reported(self):
        # Strongly non-dominant: Jacobi blows up -> ConvergenceError on
        # non-finite, or converged=False within budget. (The overflow on
        # the way to inf is the expected mechanism, hence the filter.)
        a = np.array([[1.0, 10.0], [10.0, 1.0]])
        try:
            result = jacobi(a, np.ones(2), max_iter=500)
            assert not result.converged
        except ConvergenceError:
            pass

    def test_residual_history_monotone_for_dominant_jacobi(self, dominant_system):
        a, b, _ = dominant_system
        result = jacobi(a, b, tol=1e-12)
        residuals = np.asarray(result.residuals)
        assert np.all(np.diff(residuals) <= 1e-12)


class TestKrylov:
    def test_cg_converges_fast_on_spd(self, spd_system):
        a, b, x = spd_system
        result = conjugate_gradient(a, b, tol=1e-12)
        assert result.converged
        assert result.iterations <= a.shape[0] + 2
        np.testing.assert_allclose(result.x, x, rtol=1e-8)

    def test_cg_rejects_indefinite(self):
        a = np.diag([1.0, -1.0])
        with pytest.raises(ConvergenceError):
            conjugate_gradient(a, np.ones(2))

    def test_gmres_on_nonsymmetric(self, dominant_system):
        a, b, x = dominant_system
        a = a.copy()
        a[0, -1] += 0.5  # break symmetry
        result = gmres(a, b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b), rtol=1e-6)

    def test_gmres_with_restart(self, dominant_system):
        a, b, _ = dominant_system
        result = gmres(a, b, tol=1e-10, restart=3)
        assert result.converged

    def test_warm_start_reduces_iterations(self):
        """The paper's motivation: a good seed accelerates convergence.

        Needs a system where CG converges before the exact-termination
        bound of n iterations, i.e. large and well conditioned.
        """
        rng = np.random.default_rng(10)
        a = wishart_matrix(64, rng, aspect=8.0)
        b = random_vector(64, rng)
        x = np.linalg.solve(a, b)
        cold = conjugate_gradient(a, b, tol=1e-10)
        warm = conjugate_gradient(a, b, x0=x * (1.0 + 1e-4), tol=1e-10)
        assert warm.iterations < cold.iterations

    def test_exact_seed_converges_immediately(self, spd_system):
        a, b, x = spd_system
        result = conjugate_gradient(a, b, x0=x, tol=1e-9)
        assert result.iterations == 0


class TestGmresHappyBreakdown:
    """Regression: Arnoldi happy breakdown must terminate the cycle.

    Before the fix, ``h[k+1, k] <= 1e-14`` only skipped the basis-vector
    update: the loop kept orthogonalizing against a zero vector, the
    rotated-residual estimate cascaded to an exact 0.0 that defeated the
    tolerance check, and the triangular solve received a singular
    (zero-column) system — ``numpy.linalg.LinAlgError`` on any system
    whose Krylov space is exhausted before ``tol`` is reached.
    """

    def _low_degree_system(self, seed=0, n=12, distinct=(1.0, 3.0)):
        """SPD matrix with ``len(distinct)`` eigenvalues: the minimal
        polynomial degree — and the exact-termination iteration count —
        equals ``len(distinct)``."""
        rng = np.random.default_rng(seed)
        q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        values = np.array(
            [distinct[i * len(distinct) // n] for i in range(n)]
        )
        return (q * values) @ q.T, random_vector(n, rng)

    def test_converges_at_minimal_polynomial_degree(self):
        a, b = self._low_degree_system(distinct=(1.0, 3.0))
        result = gmres(a, b, tol=1e-13)
        assert result.converged
        assert result.iterations <= 2  # minimal polynomial degree

    def test_three_eigenvalue_system(self):
        a, b = self._low_degree_system(distinct=(1.0, 2.0, 5.0))
        result = gmres(a, b, tol=1e-13)
        assert result.converged
        assert result.iterations <= 3

    def test_unreachable_tolerance_terminates_without_crash(self):
        """tol below rounding: every cycle hits the breakdown; the old
        code raised LinAlgError from a singular triangular solve."""
        a, b = self._low_degree_system()
        result = gmres(a, b, tol=0.0, max_iter=40)
        assert not result.converged
        assert result.iterations == 40  # budget honoured, no crash
        # The returned solution is still exact to rounding.
        assert result.final_residual < 1e-12

    def test_breakdown_solution_is_exact(self):
        a, b = self._low_degree_system(seed=3)
        result = gmres(a, b, tol=1e-13)
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b), rtol=1e-9)

    def test_gmres_many_inherits_fix(self):
        a, b = self._low_degree_system(seed=5)
        from repro.core.digital import gmres_many

        results = gmres_many(a, np.stack([b, 2.0 * b]), tol=0.0, max_iter=30)
        for result in results:
            assert result.iterations == 30
            assert result.final_residual < 1e-12


class TestCommonGuards:
    def test_zero_b_rejected(self):
        with pytest.raises(SolverError):
            conjugate_gradient(np.eye(2), np.zeros(2))

    def test_final_residual_property(self, dominant_system):
        a, b, _ = dominant_system
        result = jacobi(a, b, tol=1e-10)
        assert result.final_residual == result.residuals[-1]
        assert result.final_residual <= 1e-10
