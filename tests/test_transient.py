"""Tests for the time-domain simulation of the AMC circuits."""

import math

import numpy as np
import pytest

from repro.circuits.dynamics import inv_settling_time, mvm_settling_time
from repro.circuits.transient import (
    simulate_inv_transient,
    simulate_mvm_transient,
)
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import normalize_matrix
from repro.errors import CircuitError
from repro.workloads.matrices import random_vector, wishart_matrix


def _array(n=6, seed=0):
    matrix, _ = normalize_matrix(wishart_matrix(n, rng=seed))
    return CrossbarArray.program(matrix, rng=seed, pre_normalized=True), matrix


class TestMVMTransient:
    def test_settles_to_dc_solution(self):
        array, matrix = _array()
        v = random_vector(6, rng=1) * 0.3
        result = simulate_mvm_transient(array, v, open_loop_gain=1e4)
        assert result.stable
        # Finite gain scales the DC value slightly; compare against the
        # finite-gain algebraic equilibrium.
        expected = -(matrix @ v) / (1.0 + (1.0 + array.load_row_sums()) / 1e4)
        np.testing.assert_allclose(result.final, expected, rtol=1e-9)
        np.testing.assert_allclose(result.outputs[-1], expected, rtol=1e-3, atol=1e-6)

    def test_starts_from_initial_condition(self):
        array, _ = _array()
        v = random_vector(6, rng=2) * 0.3
        v0 = np.full(6, 0.1)
        result = simulate_mvm_transient(array, v, v0=v0)
        np.testing.assert_allclose(result.outputs[0], v0, atol=1e-9)

    def test_settling_time_finite_and_positive(self):
        array, _ = _array()
        v = random_vector(6, rng=3) * 0.3
        result = simulate_mvm_transient(array, v)
        assert 0.0 < result.settling_time_s < math.inf

    def test_settling_tracks_analytic_model(self):
        """Transient settling within ~an order of the first-order formula."""
        array, _ = _array()
        v = random_vector(6, rng=4) * 0.3
        result = simulate_mvm_transient(array, v, gbwp_hz=100e6, epsilon=1e-4)
        g_total = np.asarray(array.g_pos) + np.asarray(array.g_neg)
        analytic = mvm_settling_time(g_total, array.g_unit, 100e6, epsilon=1e-4)
        assert analytic / 10 < result.settling_time_s < analytic * 10

    def test_faster_opamp_settles_faster(self):
        array, _ = _array()
        v = random_vector(6, rng=5) * 0.3
        slow = simulate_mvm_transient(array, v, gbwp_hz=10e6)
        fast = simulate_mvm_transient(array, v, gbwp_hz=1e9)
        assert fast.settling_time_s < slow.settling_time_s

    def test_ideal_gain_rejected(self):
        array, _ = _array()
        with pytest.raises(CircuitError, match="finite"):
            simulate_mvm_transient(array, np.zeros(6), open_loop_gain=math.inf)


class TestINVTransient:
    def test_settles_to_solution(self):
        array, matrix = _array(seed=7)
        v = random_vector(6, rng=8) * 0.3
        result = simulate_inv_transient(array, v, open_loop_gain=1e5)
        assert result.stable
        expected = -np.linalg.solve(matrix, v)
        np.testing.assert_allclose(result.final, expected, rtol=1e-2)
        np.testing.assert_allclose(result.outputs[-1], result.final, rtol=1e-2, atol=1e-6)

    def test_settling_tracks_eigenvalue_model(self):
        array, matrix = _array(seed=9)
        v = random_vector(6, rng=10) * 0.3
        result = simulate_inv_transient(array, v, gbwp_hz=100e6, epsilon=1e-4)
        analytic = inv_settling_time(matrix, 100e6, epsilon=1e-4)
        assert analytic / 20 < result.settling_time_s < analytic * 20

    def test_unstable_matrix_flagged(self):
        matrix = -0.5 * np.eye(4)  # negative eigenvalues -> divergence
        array = CrossbarArray.program(matrix, rng=0, pre_normalized=True)
        result = simulate_inv_transient(array, np.full(4, 0.1))
        assert not result.stable
        assert math.isinf(result.settling_time_s)
        assert np.all(np.isnan(result.final))

    def test_size_independence_of_settling(self):
        """The O(1) claim: settling depends on conditioning, not size."""
        times = []
        for n in (4, 16, 64):
            matrix, _ = normalize_matrix(wishart_matrix(n, rng=11, aspect=8.0))
            array = CrossbarArray.program(matrix, rng=12, pre_normalized=True)
            v = random_vector(n, rng=13) * 0.2
            result = simulate_inv_transient(array, v, epsilon=1e-3)
            times.append(result.settling_time_s)
        # Settling varies far less than the 16x size span.
        assert max(times) / min(times) < 8.0

    def test_requires_square(self):
        array = CrossbarArray.program(np.ones((2, 3)) * 0.1, rng=0, pre_normalized=True)
        with pytest.raises(CircuitError, match="square"):
            simulate_inv_transient(array, np.zeros(2))

    def test_input_scale_matches_ops(self):
        """Transient equilibrium with a scaled input conductance equals
        the Schur-compensated DC operation."""
        matrix, _ = normalize_matrix(wishart_matrix(4, rng=14))
        scale = 2.0
        array = CrossbarArray.program(matrix / scale, rng=15, pre_normalized=True)
        v = random_vector(4, rng=16) * 0.2
        result = simulate_inv_transient(
            array, v, open_loop_gain=1e6, input_scale=1.0 / scale
        )
        expected = -np.linalg.solve(matrix, v)
        np.testing.assert_allclose(result.final, expected, rtol=1e-3)


class TestResultHelpers:
    def test_output_at_interpolates(self):
        array, _ = _array()
        v = random_vector(6, rng=17) * 0.3
        result = simulate_mvm_transient(array, v)
        mid = 0.5 * (result.times[3] + result.times[4])
        interpolated = result.output_at(mid)
        assert interpolated.shape == (6,)
        lo = np.minimum(result.outputs[3], result.outputs[4]) - 1e-12
        hi = np.maximum(result.outputs[3], result.outputs[4]) + 1e-12
        assert np.all(interpolated >= lo) and np.all(interpolated <= hi)
