"""Tests for the AC (frequency-domain) analysis."""

import math

import numpy as np
import pytest

from repro.circuits.ac import (
    amc_frequency_response,
    minus_3db_frequency,
    single_pole_gain,
    solve_ac,
)
from repro.circuits.mna import solve_dc
from repro.circuits.netlist import Circuit
from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import normalize_matrix
from repro.errors import CircuitError
from repro.workloads.matrices import random_vector, wishart_matrix


class TestSinglePoleGain:
    def test_dc_value(self):
        assert single_pole_gain(1e4, 100e6, 0.0) == pytest.approx(1e4)

    def test_unity_gain_frequency(self):
        gain = single_pole_gain(1e5, 100e6, 100e6)
        assert abs(gain) == pytest.approx(1.0, rel=0.01)

    def test_pole_frequency_is_minus_3db(self):
        a0, gbwp = 1e4, 100e6
        pole = gbwp / a0
        gain = single_pole_gain(a0, gbwp, pole)
        assert abs(gain) == pytest.approx(a0 / math.sqrt(2.0), rel=1e-9)

    def test_negative_frequency_rejected(self):
        with pytest.raises(CircuitError):
            single_pole_gain(1e4, 100e6, -1.0)


class TestSolveAC:
    def test_rc_lowpass(self):
        """First-order RC: |H| = 1/sqrt(1 + (f/fc)^2)."""
        r, c = 1e3, 1e-9
        fc = 1.0 / (2.0 * math.pi * r * c)

        def mag(freq):
            circuit = Circuit()
            circuit.vsource("in", "0", 1.0)
            circuit.resistor("in", "out", r)
            circuit.capacitor("out", "0", c)
            return solve_ac(circuit, freq).magnitude("out")

        assert mag(0.0) == pytest.approx(1.0)
        assert mag(fc) == pytest.approx(1.0 / math.sqrt(2.0), rel=1e-9)
        assert mag(10 * fc) == pytest.approx(1.0 / math.sqrt(101.0), rel=1e-9)

    def test_rc_phase(self):
        r, c = 1e3, 1e-9
        fc = 1.0 / (2.0 * math.pi * r * c)
        circuit = Circuit()
        circuit.vsource("in", "0", 1.0)
        circuit.resistor("in", "out", r)
        circuit.capacitor("out", "0", c)
        assert solve_ac(circuit, fc).phase_deg("out") == pytest.approx(-45.0, abs=1e-6)

    def test_rl_highpass(self):
        """Series L to ground after R: |v_L| rises with frequency."""
        r, inductance = 1e3, 1e-3

        def mag(freq):
            circuit = Circuit()
            circuit.vsource("in", "0", 1.0)
            circuit.resistor("in", "out", r)
            circuit.inductor("out", "0", inductance)
            return solve_ac(circuit, freq).magnitude("out")

        assert mag(0.0) == pytest.approx(0.0, abs=1e-12)
        fc = r / (2.0 * math.pi * inductance)
        assert mag(fc) == pytest.approx(1.0 / math.sqrt(2.0), rel=1e-9)

    def test_zero_frequency_matches_dc_solver(self):
        circuit = Circuit()
        circuit.vsource("in", "0", 2.0)
        circuit.resistor("in", "mid", 1e3)
        circuit.resistor("mid", "0", 3e3)
        ac = solve_ac(circuit, 0.0)
        dc = solve_dc(circuit)
        assert ac.voltage("mid").real == pytest.approx(dc.voltage("mid"))
        assert ac.voltage("mid").imag == pytest.approx(0.0, abs=1e-15)

    def test_complex_vcvs_gain(self):
        circuit = Circuit()
        circuit.vsource("in", "0", 1.0)
        circuit.vcvs("out", "0", "in", "0", 1j * 2.0)
        circuit.resistor("out", "0", 1e3)
        solution = solve_ac(circuit, 1e3)
        assert solution.voltage("out") == pytest.approx(2j)

    def test_dc_solver_rejects_complex_gain(self):
        circuit = Circuit()
        circuit.vsource("in", "0", 1.0)
        circuit.vcvs("out", "0", "in", "0", 1j * 2.0)
        circuit.resistor("out", "0", 1e3)
        with pytest.raises(CircuitError, match="complex gain"):
            solve_dc(circuit)

    def test_dc_solver_treats_capacitor_as_open(self):
        circuit = Circuit()
        circuit.vsource("in", "0", 1.0)
        circuit.resistor("in", "out", 1e3)
        circuit.capacitor("out", "0", 1e-9)
        circuit.resistor("out", "0", 1e6)  # keep the node non-floating
        assert solve_dc(circuit).voltage("out") == pytest.approx(1e6 / (1e6 + 1e3))

    def test_dc_solver_treats_inductor_as_short(self):
        circuit = Circuit()
        circuit.vsource("in", "0", 1.0)
        circuit.resistor("in", "out", 1e3)
        circuit.inductor("out", "0", 1e-3)
        assert solve_dc(circuit).voltage("out") == pytest.approx(0.0, abs=1e-12)

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            solve_ac(Circuit(), 1e3)


class TestAMCFrequencyResponse:
    @pytest.fixture
    def array(self):
        matrix, _ = normalize_matrix(wishart_matrix(4, rng=0))
        return CrossbarArray.program(matrix, rng=1, pre_normalized=True)

    def test_dc_magnitude_matches_dc_solve(self, array):
        v = random_vector(4, rng=2) * 0.3
        response = amc_frequency_response(array, v, [1.0], topology="inv")
        # At 1 Hz (far below any pole) the magnitude equals the DC value.
        np.testing.assert_allclose(response["magnitude"][0], response["dc"], rtol=1e-6)

    def test_bandwidth_matches_transient_pole(self, array):
        """The -3 dB frequency tracks the transient model's slowest pole."""
        from repro.circuits.transient import simulate_inv_transient

        v = random_vector(4, rng=3) * 0.3
        transient = simulate_inv_transient(array, v, open_loop_gain=1e4, gbwp_hz=100e6)
        freqs = np.logspace(4, 9, 120)
        response = amc_frequency_response(
            array, v, freqs, topology="inv", a0=1e4, gbwp_hz=100e6
        )
        f3db = minus_3db_frequency(
            response["freqs_hz"], response["magnitude"], response["dc"]
        )
        assert math.isfinite(f3db)
        assert transient.slowest_pole_hz / 5 < f3db < transient.slowest_pole_hz * 5

    def test_mvm_topology(self, array):
        v = random_vector(4, rng=4) * 0.3
        response = amc_frequency_response(array, v, [1.0, 1e9], topology="mvm")
        # Far above the op-amp bandwidth the outputs collapse.
        assert np.all(response["magnitude"][1] < response["magnitude"][0])

    def test_unknown_topology(self, array):
        with pytest.raises(CircuitError):
            amc_frequency_response(array, np.zeros(4), [1.0], topology="xor")

    def test_empty_freqs_rejected(self, array):
        with pytest.raises(CircuitError):
            amc_frequency_response(array, np.zeros(4), [])

    def test_minus_3db_inf_when_flat(self):
        freqs = np.array([1.0, 10.0])
        magnitude = np.ones((2, 3))
        dc = np.ones(3)
        assert minus_3db_frequency(freqs, magnitude, dc) == math.inf
