"""Tests for ``repro.core.backend`` — the precision/namespace seam.

The contract under test, mirroring the module docstring:

- the default ``numpy`` backend's ``cast`` is the identity on float64
  arrays (no copy, no bit changes) and its LAPACK pair is the exact
  ``dgetrf``/``dgetrs`` the kernel always used — the mechanism that
  keeps the default path byte-identical;
- ``numpy-f32`` computes at float32 under the documented
  :data:`~repro.core.backend.F32_TOLERANCE` relative-L1 contract;
- the ``torch`` tier registers behind the same seam but degrades to a
  typed :class:`~repro.errors.BackendError` when PyTorch is absent;
- ``canonical_dtype`` admits exactly two tiers: float32 stays, every
  other dtype lands at float64.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.core.backend import (
    DEFAULT_BACKEND,
    F32_TOLERANCE,
    ArrayBackend,
    TorchArrayBackend,
    ToleranceContract,
    available_backends,
    canonical_dtype,
    get_backend,
    lapack_solvers,
    register_backend,
)
from repro.core.common import FactoredSystem, inv_solve, solve_columns
from repro.errors import BackendError, SolverError
from repro.workloads.matrices import random_vector, wishart_matrix

HAS_TORCH = importlib.util.find_spec("torch") is not None


# ----------------------------------------------------------------------
# canonical dtypes and LAPACK resolution
# ----------------------------------------------------------------------


class TestCanonicalDtype:
    def test_two_tiers_only(self):
        assert canonical_dtype(np.float32) == np.dtype(np.float32)
        assert canonical_dtype("float32") == np.dtype(np.float32)
        for other in (np.float64, np.float16, np.int32, np.int64, bool, "int8"):
            assert canonical_dtype(other) == np.dtype(np.float64), other

    def test_lapack_pair_matches_tier(self):
        d_getrf, d_getrs = lapack_solvers(np.float64)
        s_getrf, s_getrs = lapack_solvers(np.float32)
        assert d_getrf.typecode == "d" and d_getrs.typecode == "d"
        assert s_getrf.typecode == "s" and s_getrs.typecode == "s"
        # integer input promotes to the float64 tier
        assert lapack_solvers(np.int64) is lapack_solvers(np.float64)

    def test_lapack_pair_memoized(self):
        assert lapack_solvers(np.float64) is lapack_solvers("float64")
        assert lapack_solvers(np.float32) is lapack_solvers("float32")


# ----------------------------------------------------------------------
# tolerance contracts
# ----------------------------------------------------------------------


class TestToleranceContract:
    def test_default_is_bit_identical(self):
        contract = ToleranceContract()
        assert contract.bit_identical
        x = np.array([1.0, -2.0, 3.0])
        assert contract.admits(x, x.copy())
        assert not contract.admits(x, x + 1e-15)

    def test_deviation_is_relative_l1(self):
        contract = F32_TOLERANCE
        ref = np.array([1.0, 1.0, 2.0])
        act = np.array([1.0, 1.0, 2.004])
        assert contract.deviation(act, ref) == pytest.approx(0.001)
        assert contract.admits(act, ref)
        assert not contract.admits(ref + 1.0, ref)

    def test_zero_reference_edge_cases(self):
        contract = F32_TOLERANCE
        zeros = np.zeros(3)
        assert contract.deviation(zeros, zeros) == 0.0
        assert contract.deviation(np.ones(3), zeros) == float("inf")
        # the atol escape hatch admits near-zero absolute differences
        assert contract.admits(np.full(3, 1e-5), zeros)
        assert not contract.admits(np.ones(3), zeros)

    def test_shape_mismatch_never_admits(self):
        assert not F32_TOLERANCE.admits(np.ones(3), np.ones(4))

    def test_f32_contract_documented_bounds(self):
        assert not F32_TOLERANCE.bit_identical
        assert F32_TOLERANCE.rtol == 5e-3
        assert F32_TOLERANCE.atol == 5e-4


# ----------------------------------------------------------------------
# registry: names, aliases, instances, failure modes
# ----------------------------------------------------------------------


class TestRegistry:
    def test_default_backend_is_float64_bit_identical(self):
        backend = get_backend()
        assert backend.name == DEFAULT_BACKEND == "numpy"
        assert backend.dtype == np.dtype(np.float64)
        assert backend.tolerance.bit_identical
        assert backend.xp is np
        assert backend.itemsize == 8

    def test_aliases_resolve_to_shared_instances(self):
        default = get_backend("numpy")
        for alias in ("numpy-f64", "f64", "float64", None):
            assert get_backend(alias) is default
        f32 = get_backend("numpy-f32")
        for alias in ("f32", "float32"):
            assert get_backend(alias) is f32
        assert f32.dtype == np.dtype(np.float32)
        assert f32.tolerance == F32_TOLERANCE

    def test_instances_pass_through(self):
        backend = get_backend("numpy-f32")
        assert get_backend(backend) is backend

    def test_unknown_name_raises_typed_error_listing_known(self):
        with pytest.raises(BackendError, match="unknown array backend"):
            get_backend("cuda")
        with pytest.raises(BackendError, match="numpy-f32"):
            get_backend("nope")

    def test_available_backends_always_includes_numpy_tiers(self):
        names = available_backends()
        assert "numpy" in names and "numpy-f32" in names
        assert ("torch" in names) == HAS_TORCH

    def test_register_replace_and_alias(self):
        try:
            register_backend(
                "test-tier",
                lambda: ArrayBackend("test-tier", np.float32, F32_TOLERANCE),
                aliases=("tt",),
            )
            first = get_backend("tt")
            assert first.name == "test-tier"
            # re-registering drops the memoized instance
            register_backend(
                "test-tier",
                lambda: ArrayBackend("test-tier", np.float64, ToleranceContract()),
            )
            second = get_backend("test-tier")
            assert second is not first
            assert second.dtype == np.dtype(np.float64)
        finally:
            from repro.core import backend as backend_module

            backend_module._FACTORIES.pop("test-tier", None)
            backend_module._INSTANCES.pop("test-tier", None)
            backend_module._ALIASES.pop("tt", None)

    def test_failing_factory_surfaces_backend_error(self):
        def broken():
            raise BackendError("dependency missing")

        try:
            register_backend("broken-tier", broken)
            with pytest.raises(BackendError, match="dependency missing"):
                get_backend("broken-tier")
            # a broken tier is excluded, not fatal, for discovery
            assert "broken-tier" not in available_backends()
        finally:
            from repro.core import backend as backend_module

            backend_module._FACTORIES.pop("broken-tier", None)


# ----------------------------------------------------------------------
# cast semantics: the mechanism behind byte-identity
# ----------------------------------------------------------------------


class TestCast:
    def test_f64_cast_is_identity_on_f64_arrays(self):
        backend = get_backend("numpy")
        a = np.random.default_rng(0).standard_normal((4, 4))
        assert backend.cast(a) is a  # same object: no copy, no bit changes

    def test_none_passes_through(self):
        assert get_backend("numpy").cast(None) is None
        assert get_backend("numpy-f32").cast(None) is None

    def test_f32_cast_downcasts_and_is_noop_on_f32(self):
        backend = get_backend("numpy-f32")
        a64 = np.array([1.0, 2.5, -3.25])
        a32 = backend.cast(a64)
        assert a32.dtype == np.float32
        assert backend.cast(a32) is a32

    def test_cast_accepts_lists_and_scalars(self):
        backend = get_backend("numpy-f32")
        assert backend.cast([1.0, 2.0]).dtype == np.float32
        assert backend.cast(3).dtype == np.float32

    def test_to_numpy_preserves_dtype(self):
        backend = get_backend("numpy-f32")
        a = np.ones(3, dtype=np.float64)
        assert backend.to_numpy(a).dtype == np.float64

    def test_lapack_accessor_matches_module_function(self):
        assert get_backend("numpy").lapack() is lapack_solvers(np.float64)
        assert get_backend("numpy-f32").lapack() is lapack_solvers(np.float32)


# ----------------------------------------------------------------------
# kernel integration: FactoredSystem at both tiers
# ----------------------------------------------------------------------


class TestFactoredSystemTiers:
    def test_f32_factorization_solves_at_f32(self):
        matrix = wishart_matrix(8, rng=0).astype(np.float32)
        b = random_vector(8, rng=1).astype(np.float32)
        fact = FactoredSystem(matrix)
        x = fact.solve(b)
        assert x.dtype == np.float32
        reference = np.linalg.solve(matrix.astype(np.float64), b.astype(np.float64))
        assert F32_TOLERANCE.admits(x, reference)

    def test_f32_block_solve_matches_per_column(self):
        matrix = wishart_matrix(6, rng=2).astype(np.float32)
        rhs = np.stack(
            [random_vector(6, rng=i).astype(np.float32) for i in range(3)]
        )
        fact = FactoredSystem(matrix)
        block = fact.solve(rhs)
        assert block.dtype == np.float32
        for r in range(3):
            assert np.array_equal(block[r], fact.solve(rhs[r]))
            assert np.array_equal(block[r], solve_columns(matrix, rhs[r]))

    def test_f64_path_unchanged_by_seam(self):
        """The dtype-generic factorization produces the exact bits the
        hardwired-dgetrf implementation always did."""
        matrix = wishart_matrix(8, rng=3)
        b = random_vector(8, rng=4)
        from scipy.linalg import lapack

        lu, piv, _ = lapack.dgetrf(matrix)
        expected, _ = lapack.dgetrs(lu, piv, b)
        assert np.array_equal(FactoredSystem(matrix).solve(b), expected)

    def test_f32_singular_rejected_like_f64(self):
        singular = np.zeros((3, 3), dtype=np.float32)
        singular[0, 0] = 1.0
        with pytest.raises(SolverError, match="singular"):
            FactoredSystem(singular)
        with pytest.raises(SolverError, match="singular"):
            inv_solve(singular, np.ones(3, dtype=np.float32))


# ----------------------------------------------------------------------
# torch tier: present or absent, always typed
# ----------------------------------------------------------------------


@pytest.mark.skipif(HAS_TORCH, reason="torch installed; absence path untestable")
class TestTorchAbsent:
    def test_construction_raises_typed_error(self):
        with pytest.raises(BackendError, match="PyTorch is not installed"):
            TorchArrayBackend()

    def test_registry_propagates_and_discovery_skips(self):
        with pytest.raises(BackendError, match="not installed"):
            get_backend("torch")
        with pytest.raises(BackendError):
            get_backend("torch-f32")
        assert "torch" not in available_backends()


@pytest.mark.skipif(not HAS_TORCH, reason="requires PyTorch")
class TestTorchPresent:
    def test_cast_round_trips_tensors(self):
        import torch

        backend = get_backend("torch")
        assert backend.dtype == np.dtype(np.float32)
        t = torch.arange(4, dtype=torch.float64)
        a = backend.cast(t)
        assert isinstance(a, np.ndarray) and a.dtype == np.float32
        back = backend.tensor(a)
        assert isinstance(back, torch.Tensor)
        assert np.array_equal(backend.to_numpy(back), a)

    def test_solves_stay_on_scipy_lapack(self):
        backend = get_backend("torch")
        assert backend.lapack() is lapack_solvers(np.float32)
