"""Tests for the MVM/INV crossbar netlist generators (Fig. 1 circuits)."""

import numpy as np
import pytest

from repro.circuits.generators import build_inv_circuit, build_mvm_circuit
from repro.circuits.mna import solve_dc
from repro.crossbar.mapping import map_to_conductances
from repro.errors import CircuitError
from repro.workloads.matrices import diagonally_dominant_matrix

G0 = 100e-6


def _conductances(matrix):
    mapped = map_to_conductances(matrix, G0, pre_normalized=True)
    return mapped.g_pos, mapped.g_neg


class TestMVMCircuit:
    def test_ideal_mvm_matches_matrix_product(self):
        matrix = np.array([[0.5, -0.3], [0.2, 0.8]])
        g_pos, g_neg = _conductances(matrix)
        v = np.array([0.4, -0.2])
        circuit, outputs = build_mvm_circuit(g_pos, g_neg, v, G0)
        sol = solve_dc(circuit)
        np.testing.assert_allclose(sol.voltages(outputs), -matrix @ v, atol=1e-12)

    def test_rectangular_array(self):
        matrix = np.array([[0.5, -0.3, 0.1], [0.2, 0.8, -0.6]])
        g_pos, g_neg = _conductances(matrix)
        v = np.array([0.1, 0.2, 0.3])
        circuit, outputs = build_mvm_circuit(g_pos, g_neg, v, G0)
        sol = solve_dc(circuit)
        np.testing.assert_allclose(sol.voltages(outputs), -matrix @ v, atol=1e-12)

    def test_wire_resistance_degrades_output(self):
        matrix = np.array([[0.5, 0.3], [0.2, 0.8]])
        g_pos, g_neg = _conductances(matrix)
        v = np.array([0.4, 0.4])
        _, outputs = build_mvm_circuit(g_pos, g_neg, v, G0)
        ideal = solve_dc(build_mvm_circuit(g_pos, g_neg, v, G0)[0]).voltages(outputs)
        wired = solve_dc(build_mvm_circuit(g_pos, g_neg, v, G0, r_wire=50.0)[0]).voltages(outputs)
        assert np.all(np.abs(wired) < np.abs(ideal))

    def test_finite_gain_scales_output(self):
        matrix = np.array([[0.5, 0.3], [0.2, 0.8]])
        g_pos, g_neg = _conductances(matrix)
        v = np.array([0.4, 0.4])
        exact = -matrix @ v
        out = solve_dc(
            build_mvm_circuit(g_pos, g_neg, v, G0, opamp_gain=100.0)[0]
        ).voltages([f"out_{i}" for i in range(2)])
        assert np.all(np.abs(out) < np.abs(exact))
        np.testing.assert_allclose(out, exact, rtol=0.1)

    def test_offsets_shift_output(self):
        matrix = np.array([[0.5, 0.3], [0.2, 0.8]])
        g_pos, g_neg = _conductances(matrix)
        v = np.zeros(2)
        offsets = np.array([1e-3, -1e-3])
        out = solve_dc(
            build_mvm_circuit(g_pos, g_neg, v, G0, offsets=offsets)[0]
        ).voltages([f"out_{i}" for i in range(2)])
        # With zero input the output is the offset times the noise gain.
        noise_gain = 1.0 + np.sum(np.abs(matrix), axis=1)
        np.testing.assert_allclose(out, noise_gain * offsets, rtol=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CircuitError):
            build_mvm_circuit(np.zeros((2, 2)), np.zeros((3, 2)), np.zeros(2), G0)


class TestINVCircuit:
    def test_ideal_inv_solves_system(self):
        matrix = np.array([[1.0, -0.3], [0.2, 0.8]])
        g_pos, g_neg = _conductances(matrix)
        v = np.array([0.3, -0.1])
        circuit, outputs = build_inv_circuit(g_pos, g_neg, v, G0)
        sol = solve_dc(circuit)
        np.testing.assert_allclose(
            sol.voltages(outputs), -np.linalg.solve(matrix, v), atol=1e-10
        )

    def test_larger_system(self):
        rng = np.random.default_rng(0)
        matrix = diagonally_dominant_matrix(5, rng)
        matrix = matrix / np.max(np.abs(matrix))
        g_pos, g_neg = _conductances(matrix)
        v = rng.uniform(-0.3, 0.3, 5)
        circuit, outputs = build_inv_circuit(g_pos, g_neg, v, G0)
        sol = solve_dc(circuit)
        np.testing.assert_allclose(
            sol.voltages(outputs), -np.linalg.solve(matrix, v), atol=1e-9
        )

    def test_input_conductance_scaling(self):
        """g_input = G0 / s solves the system scaled by s (the Schur
        renormalization trick)."""
        matrix = np.array([[1.0, -0.3], [0.2, 0.8]])
        scale = 2.5
        g_pos, g_neg = _conductances(matrix / scale)
        v = np.array([0.3, -0.1])
        circuit, outputs = build_inv_circuit(g_pos, g_neg, v, G0 / scale)
        sol = solve_dc(circuit)
        np.testing.assert_allclose(
            sol.voltages(outputs), -np.linalg.solve(matrix, v), atol=1e-10
        )

    def test_requires_square(self):
        with pytest.raises(CircuitError, match="square"):
            build_inv_circuit(np.zeros((2, 3)), np.zeros((2, 3)), np.zeros(2), G0)

    def test_finite_gain_converges_to_ideal(self):
        matrix = np.array([[1.0, -0.3], [0.2, 0.8]])
        g_pos, g_neg = _conductances(matrix)
        v = np.array([0.3, -0.1])
        exact = -np.linalg.solve(matrix, v)

        def run(gain):
            c, outs = build_inv_circuit(g_pos, g_neg, v, G0, opamp_gain=gain)
            return solve_dc(c).voltages(outs)

        err_low = np.max(np.abs(run(1e2) - exact))
        err_high = np.max(np.abs(run(1e6) - exact))
        assert err_high < err_low
        assert err_high < 1e-4

    def test_wire_resistance_perturbs_solution(self):
        matrix = np.array([[1.0, -0.3], [0.2, 0.8]])
        g_pos, g_neg = _conductances(matrix)
        v = np.array([0.3, -0.1])
        c, outs = build_inv_circuit(g_pos, g_neg, v, G0, r_wire=20.0)
        out = solve_dc(c).voltages(outs)
        exact = -np.linalg.solve(matrix, v)
        assert 0.0 < np.max(np.abs(out - exact)) < 0.5 * np.max(np.abs(exact))


class TestBulkAssemblyEquivalence:
    """The bulk-append assembly path must produce the reference netlist."""

    @pytest.mark.parametrize("r_wire", [0.0, 1.0])
    @pytest.mark.parametrize("builder", [build_mvm_circuit, build_inv_circuit])
    def test_identical_netlists(self, builder, r_wire):
        rng = np.random.default_rng(17)
        n = 9
        g_pos = rng.uniform(0.0, 1e-4, size=(n, n))
        g_neg = rng.uniform(0.0, 1e-4, size=(n, n))
        g_pos[g_pos < 3e-5] = 0.0  # exercise the sparse-cell mask
        g_neg[g_neg < 3e-5] = 0.0
        v_in = rng.uniform(-1.0, 1.0, size=n)
        offsets = rng.normal(0.0, 1e-3, size=n)
        bulk_c, bulk_out = builder(
            g_pos, g_neg, v_in, 1e-4,
            r_wire=r_wire, opamp_gain=1e4, offsets=offsets, bulk=True,
        )
        loop_c, loop_out = builder(
            g_pos, g_neg, v_in, 1e-4,
            r_wire=r_wire, opamp_gain=1e4, offsets=offsets, bulk=False,
        )
        assert bulk_out == loop_out
        assert bulk_c.elements == loop_c.elements  # values, names, and order
        assert bulk_c.nodes() == loop_c.nodes()
