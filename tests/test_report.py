"""Tests for the markdown report generator."""

import pytest

from repro.analysis.reporting import generate_report, write_report


@pytest.fixture(scope="module")
def quick_report():
    # One small suite keeps the test fast while exercising the whole
    # rendering path.
    return generate_report(quick=True, seed=0, suites=["fig7-wishart"])


class TestGenerateReport:
    def test_contains_title_and_suite(self, quick_report):
        assert quick_report.startswith("# BlockAMC reproduction report")
        assert "fig7-wishart" in quick_report
        assert "Fig. 7(a)" in quick_report

    def test_contains_cost_section(self, quick_report):
        assert "fig10-costs" in quick_report
        assert "48.8%" in quick_report

    def test_markdown_tables_well_formed(self, quick_report):
        lines = [l for l in quick_report.splitlines() if l.startswith("|")]
        assert lines, "report must contain markdown tables"
        for line in lines:
            assert line.endswith("|")

    def test_deterministic(self):
        a = generate_report(quick=True, seed=3, suites=["fig7-wishart"])
        b = generate_report(quick=True, seed=3, suites=["fig7-wishart"])
        assert a == b

    def test_seed_changes_numbers(self):
        a = generate_report(quick=True, seed=1, suites=["fig7-wishart"])
        b = generate_report(quick=True, seed=2, suites=["fig7-wishart"])
        assert a != b


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(
            tmp_path / "out" / "report.md", quick=True, suites=["fig7-wishart"]
        )
        assert path.exists()
        assert "# BlockAMC reproduction report" in path.read_text()


class TestDeprecatedReportShim:
    def test_shim_warns_and_reexports(self):
        import importlib
        import sys

        sys.modules.pop("repro.analysis.report", None)
        with pytest.warns(DeprecationWarning, match="repro.analysis.reporting"):
            shim = importlib.import_module("repro.analysis.report")
        assert shim.generate_report is generate_report
        assert shim.write_report is write_report
        from repro.analysis.reporting import format_table, markdown_table

        assert shim.format_table is format_table
        assert shim.markdown_table is markdown_table


class TestCliReport:
    def test_cli_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli_report.md"
        code = main(
            ["report", "--quick", "--out", str(out), "--suite", "fig7-wishart"]
        )
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
