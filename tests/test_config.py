"""Tests for the hardware configuration bundles."""

import math

import pytest

from repro.amc.config import (
    ConverterConfig,
    HardwareConfig,
    OpAmpConfig,
    SampleHoldConfig,
)
from repro.crossbar.parasitics import ParasiticConfig
from repro.devices.variations import NoVariation, RelativeGaussianVariation
from repro.errors import ValidationError


class TestOpAmpConfig:
    def test_defaults_valid(self):
        cfg = OpAmpConfig()
        assert cfg.open_loop_gain > 0
        assert not cfg.is_ideal

    def test_infinite_gain_allowed(self):
        cfg = OpAmpConfig(open_loop_gain=math.inf, input_offset_sigma_v=0.0)
        assert cfg.is_ideal

    def test_nonpositive_gain_rejected(self):
        with pytest.raises(ValidationError):
            OpAmpConfig(open_loop_gain=0.0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            OpAmpConfig(input_offset_sigma_v=-1e-3)

    def test_static_power_eq7(self):
        cfg = OpAmpConfig(supply_voltage=1.2, quiescent_current=11e-6)
        assert cfg.static_power == pytest.approx(1.2 * 11e-6)


class TestConverterConfig:
    def test_ideal(self):
        cfg = ConverterConfig.ideal()
        assert cfg.dac_bits is None and cfg.adc_bits is None

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            ConverterConfig(dac_bits=0)

    def test_bad_full_scale(self):
        with pytest.raises(ValidationError):
            ConverterConfig(v_fs=0.0)


class TestHardwareFactories:
    def test_ideal_is_ideal(self):
        cfg = HardwareConfig.ideal()
        assert cfg.opamp.is_ideal
        assert isinstance(cfg.programming.variation, NoVariation)
        assert cfg.parasitics.is_ideal

    def test_paper_ideal_mapping_has_no_variation(self):
        cfg = HardwareConfig.paper_ideal_mapping()
        assert isinstance(cfg.programming.variation, NoVariation)
        assert not cfg.opamp.is_ideal  # finite gain + offsets present

    def test_paper_variation(self):
        cfg = HardwareConfig.paper_variation()
        assert isinstance(cfg.programming.variation, RelativeGaussianVariation)
        assert cfg.programming.variation.sigma_rel == 0.05

    def test_paper_interconnect(self):
        cfg = HardwareConfig.paper_interconnect()
        assert cfg.parasitics.r_wire == 1.0
        assert not cfg.parasitics.is_ideal

    def test_paper_interconnect_exact_fidelity(self):
        cfg = HardwareConfig.paper_interconnect(fidelity="exact")
        assert cfg.parasitics.fidelity == "exact"

    def test_with_replaces_fields(self):
        cfg = HardwareConfig.ideal().with_(use_mna=True)
        assert cfg.use_mna
        assert not HardwareConfig.ideal().use_mna

    def test_with_parasitics(self):
        cfg = HardwareConfig.ideal().with_(parasitics=ParasiticConfig(r_wire=2.0))
        assert cfg.parasitics.r_wire == 2.0

    def test_bad_g_unit(self):
        with pytest.raises(ValidationError):
            HardwareConfig(g_unit=-1.0)


class TestSampleHoldConfig:
    def test_defaults_transparent(self):
        cfg = SampleHoldConfig()
        assert cfg.gain_error == 0.0
        assert cfg.noise_sigma_v == 0.0


class TestCacheKey:
    """Content digests for the repro.serve prepared-solver cache."""

    def _variants(self):
        from repro.crossbar.array import ProgrammingConfig
        from repro.devices.models import DeviceSpec
        from repro.devices.faults import StuckFaultModel
        from repro.devices.variations import (
            GaussianVariation,
            LognormalVariation,
            RelativeGaussianVariation,
        )

        return [
            HardwareConfig.ideal(),
            HardwareConfig.paper_ideal_mapping(),
            HardwareConfig.paper_variation(),
            HardwareConfig.paper_variation(0.04),
            HardwareConfig.paper_interconnect(),
            HardwareConfig.paper_interconnect(r_wire=2.0),
            HardwareConfig.paper_interconnect(fidelity="exact"),
            HardwareConfig.paper_variation().with_(use_mna=True),
            HardwareConfig.paper_variation().with_(g_unit=5e-5),
            HardwareConfig(opamp=OpAmpConfig(open_loop_gain=1e5)),
            HardwareConfig(opamp=OpAmpConfig(v_sat=1.5)),
            HardwareConfig(opamp=OpAmpConfig(output_noise_sigma_v=1e-4)),
            HardwareConfig(converters=ConverterConfig(dac_bits=8)),
            HardwareConfig(converters=ConverterConfig(adc_bits=8)),
            HardwareConfig(converters=ConverterConfig(v_fs=2.0)),
            HardwareConfig(sample_hold=SampleHoldConfig(gain_error=1e-3)),
            HardwareConfig(
                programming=ProgrammingConfig(variation=GaussianVariation(5e-6))
            ),
            HardwareConfig(
                programming=ProgrammingConfig(variation=LognormalVariation(0.05))
            ),
            HardwareConfig(
                programming=ProgrammingConfig(
                    variation=RelativeGaussianVariation(0.05), quantize=True
                )
            ),
            HardwareConfig(
                programming=ProgrammingConfig(
                    variation=RelativeGaussianVariation(0.05), use_write_verify=True
                )
            ),
            HardwareConfig(
                programming=ProgrammingConfig(faults=StuckFaultModel(p_stuck_on=0.01))
            ),
            HardwareConfig(
                programming=ProgrammingConfig(device=DeviceSpec(g_min=2e-6))
            ),
        ]

    def test_distinct_configs_never_collide(self):
        variants = self._variants()
        keys = [cfg.cache_key() for cfg in variants]
        assert len(set(keys)) == len(variants)

    def test_equal_configs_always_hit(self):
        for cfg in self._variants():
            rebuilt = cfg.with_()
            assert rebuilt == cfg
            assert rebuilt.cache_key() == cfg.cache_key()

    def test_equal_variation_instances_share_keys(self):
        a = HardwareConfig.paper_variation(0.05)
        b = HardwareConfig.paper_variation(0.05)
        assert a.programming.variation is not b.programming.variation
        assert a.cache_key() == b.cache_key()

    def test_key_is_stable_hex(self):
        key = HardwareConfig.ideal().cache_key()
        assert isinstance(key, str)
        assert len(key) == 64
        int(key, 16)
        assert key == HardwareConfig.ideal().cache_key()
