"""Smoke tests: every example script must run to completion.

Examples are part of the public contract (the README points users at
them), so CI executes each one in a subprocess and checks for a clean
exit and non-empty output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script.name} failed:\n{result.stderr[-2000:]}"
    assert len(result.stdout.strip()) > 0, f"{script.name} printed nothing"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship more
