"""Tests for the ``repro.serve`` solver service.

The load-bearing guarantees:

- **determinism under concurrency** — results are bit-identical to the
  sequential reference executor no matter how many workers run, how
  requests interleave, or how the micro-batcher grouped them;
- **coalescing correctness** — a coalesced multi-RHS batch equals
  per-request execution;
- **cache behaviour** — eviction at capacity, hits on re-use, isolation
  between configs/seeds;
- **backpressure** — a full bounded queue rejects (or stalls) instead of
  growing without bound.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.errors import (
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
    ValidationError,
)
from repro.serve import (
    SOLVER_KINDS,
    CacheStats,
    MetricsRecorder,
    MicroBatcher,
    PreparedKey,
    PreparedSolverCache,
    ServiceConfig,
    ServiceMetrics,
    SolveRequest,
    SolverService,
    execute_batch,
    matrix_digest,
    prepare_entry,
    run_sequential,
)
from repro.workloads.matrices import random_vector, wishart_matrix
from repro.workloads.traffic import mixed_traffic


def _requests(n=12, unique=3, sizes=(12, 16), seed=0):
    return mixed_traffic(n, unique_matrices=unique, sizes=sizes, seed=seed)


def _identical(a, b) -> bool:
    return np.array_equal(a.x, b.x) and a.relative_error == b.relative_error


class TestMatrixDigest:
    def test_equal_matrices_share_digest(self):
        m = wishart_matrix(8, rng=0)
        assert matrix_digest(m) == matrix_digest(m.copy())

    def test_distinct_matrices_differ(self):
        assert matrix_digest(wishart_matrix(8, rng=0)) != matrix_digest(
            wishart_matrix(8, rng=1)
        )

    def test_shape_participates(self):
        flat = np.zeros((4, 4))
        assert matrix_digest(flat) != matrix_digest(np.zeros((2, 8)))


class TestSolveRequest:
    def test_digest_computed(self):
        m = wishart_matrix(8, rng=0)
        request = SolveRequest(matrix=m, b=random_vector(8, rng=1))
        assert request.digest == matrix_digest(m)
        assert request.size == 8

    def test_precomputed_digest_kept(self):
        m = wishart_matrix(8, rng=0)
        request = SolveRequest(matrix=m, b=random_vector(8, rng=1), digest="abc")
        assert request.digest == "abc"

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValidationError):
            SolveRequest(matrix=wishart_matrix(8, rng=0), b=np.ones(9))


class TestMicroBatcher:
    def test_groups_by_key_and_takes_in_order(self):
        class Item:
            def __init__(self, key, tag):
                self.key, self.tag = key, tag

        batcher = MicroBatcher(max_batch_size=2)
        for item in [Item("a", 1), Item("b", 2), Item("a", 3), Item("a", 4)]:
            batcher.add(item)
        assert len(batcher) == 4
        assert batcher.next_key() == "a"
        assert batcher.peek("a").tag == 1
        assert [i.tag for i in batcher.take("a")] == [1, 3]
        assert batcher.pending_for("a") == 1
        assert [i.tag for i in batcher.take("a")] == [4]
        assert batcher.next_key() == "b"
        assert len(batcher) == 1

    def test_bad_batch_size(self):
        with pytest.raises(ServeError):
            MicroBatcher(max_batch_size=0)

    def test_partially_drained_hot_key_does_not_starve_others(self):
        class Item:
            def __init__(self, key, tag):
                self.key, self.tag = key, tag

        batcher = MicroBatcher(max_batch_size=2)
        for tag in range(5):
            batcher.add(Item("hot", tag))
        batcher.add(Item("cold", 99))
        assert batcher.next_key() == "hot"
        batcher.take("hot")  # partial: 3 hot items remain
        # Even if the hot key keeps refilling, the cold key serves next.
        batcher.add(Item("hot", 5))
        assert batcher.next_key() == "cold"
        assert [i.tag for i in batcher.take("cold")] == [99]
        assert batcher.next_key() == "hot"


class TestCanonicalKernel:
    """Coalesced execution must equal per-request execution."""

    @pytest.fixture(scope="class")
    def entry(self):
        matrix = wishart_matrix(16, rng=3)
        config = HardwareConfig.paper_variation()
        key = PreparedKey(matrix_digest(matrix), config.cache_key(), "blockamc-1stage", 0)
        return prepare_entry(key, matrix, config)

    def test_entry_is_coalescible(self, entry):
        assert entry.coalescible

    def test_coalesced_equals_per_request(self, entry):
        bs = [random_vector(16, rng=i) for i in range(6)]
        seeds = list(range(6))
        batch = execute_batch(entry, bs, seeds)
        singles = [execute_batch(entry, [b], [s])[0] for b, s in zip(bs, seeds)]
        for a, b in zip(batch, singles):
            assert _identical(a, b)

    def test_batch_composition_invariance(self, entry):
        bs = [random_vector(16, rng=i) for i in range(8)]
        full = execute_batch(entry, bs, list(range(8)))
        sub = execute_batch(entry, [bs[5], bs[1], bs[6]], [5, 1, 6])
        assert _identical(sub[0], full[5])
        assert _identical(sub[1], full[1])
        assert _identical(sub[2], full[6])

    def test_rng_independent_after_warm(self, entry):
        b = random_vector(16, rng=9)
        assert _identical(
            execute_batch(entry, [b], [0])[0], execute_batch(entry, [b], [123])[0]
        )

    def test_mismatched_seeds_rejected(self, entry):
        with pytest.raises(ServeError):
            execute_batch(entry, [np.ones(16)], [1, 2])

    def test_noisy_config_not_coalescible_but_seed_deterministic(self):
        matrix = wishart_matrix(12, rng=4)
        config = HardwareConfig.paper_variation().with_(
            opamp=HardwareConfig.paper_variation().opamp
        )
        noisy = config.with_(opamp=config.opamp.__class__(output_noise_sigma_v=1e-4))
        key = PreparedKey(matrix_digest(matrix), noisy.cache_key(), "blockamc-1stage", 0)
        entry = prepare_entry(key, matrix, noisy)
        assert not entry.coalescible
        b = random_vector(12, rng=1)
        one = execute_batch(entry, [b], [7])[0]
        two = execute_batch(entry, [b], [7])[0]
        other = execute_batch(entry, [b], [8])[0]
        assert _identical(one, two)
        assert not np.array_equal(one.x, other.x)


class TestSequentialReference:
    def test_replays_bit_exactly(self):
        requests = _requests()
        first, metrics = run_sequential(requests)
        second, _ = run_sequential(requests)
        for a, b in zip(first, second):
            assert _identical(a, b)
        assert metrics.requests_completed == len(requests)
        assert metrics.cache.misses == 3

    def test_solver_kinds_execute(self):
        matrix = wishart_matrix(12, rng=0)
        b = random_vector(12, rng=1)
        for kind in sorted(SOLVER_KINDS):
            results, _ = run_sequential(
                [SolveRequest(matrix=matrix, b=b, solver=kind)]
            )
            assert results[0].x.shape == (12,)


class TestServiceDeterminism:
    def test_bit_identical_to_reference(self):
        requests = _requests(n=16)
        config = ServiceConfig(workers=2, max_batch_size=4, max_linger_s=0.001)
        reference, _ = run_sequential(requests, config)
        with SolverService(config) as service:
            results = service.solve_all(requests)
        for a, b in zip(reference, results):
            assert _identical(a, b)

    def test_bit_identical_under_concurrent_submitters(self):
        requests = _requests(n=24, unique=4)
        config = ServiceConfig(workers=3, max_batch_size=5, max_linger_s=0.002)
        reference, _ = run_sequential(requests, config)
        with SolverService(config) as service:
            with ThreadPoolExecutor(max_workers=6) as pool:
                tickets = list(pool.map(service.submit_request, requests))
            results = [t.result(timeout=60) for t in tickets]
        for a, b in zip(reference, results):
            assert _identical(a, b)

    def test_worker_count_does_not_change_results(self):
        requests = _requests(n=10, unique=2)
        outcomes = []
        for workers in (1, 3):
            config = ServiceConfig(workers=workers, max_batch_size=3, max_linger_s=0.0)
            with SolverService(config) as service:
                outcomes.append(service.solve_all(requests))
        for a, b in zip(*outcomes):
            assert _identical(a, b)

    def test_distinct_prep_seeds_are_distinct_entries(self):
        matrix = wishart_matrix(12, rng=0)
        b = random_vector(12, rng=1)
        with SolverService(ServiceConfig(workers=1)) as service:
            r0 = service.submit(matrix, b, prep_seed=0).result()
            r1 = service.submit(matrix, b, prep_seed=1).result()
            metrics = service.metrics()
        assert metrics.cache.misses == 2
        assert not np.array_equal(r0.x, r1.x)


class TestCacheBehaviour:
    def test_hits_on_reuse(self):
        matrix = wishart_matrix(12, rng=0)
        with SolverService(ServiceConfig(workers=1)) as service:
            for i in range(5):
                service.submit(matrix, random_vector(12, rng=i), seed=i).result()
            metrics = service.metrics()
        assert metrics.cache.misses == 1
        assert metrics.cache.hits == 4
        assert metrics.cache.hit_rate == pytest.approx(0.8)

    def test_eviction_at_capacity(self):
        matrices = [wishart_matrix(10, rng=i) for i in range(3)]
        config = ServiceConfig(workers=1, cache_capacity=2)
        with SolverService(config) as service:
            for m in matrices:
                service.submit(m, random_vector(10, rng=0)).result()
            assert len(service.cached_solvers()) == 2
            # Oldest matrix was evicted; touching it re-prepares.
            service.submit(matrices[0], random_vector(10, rng=1)).result()
            metrics = service.metrics()
        assert metrics.cache.evictions >= 2
        assert metrics.cache.misses == 4

    def test_standalone_cache_lru_order(self):
        cache = PreparedSolverCache(capacity=2)
        matrix = wishart_matrix(8, rng=0)
        config = HardwareConfig.ideal()

        def key(tag):
            return PreparedKey(matrix_digest(matrix), config.cache_key(), "blockamc-1stage", tag)

        def entry_for(k):
            return lambda: prepare_entry(k, matrix, config)

        a, b, c = key(0), key(1), key(2)
        cache.get_or_prepare(a, entry_for(a))
        cache.get_or_prepare(b, entry_for(b))
        cache.get_or_prepare(a, entry_for(a))  # refresh a
        cache.get_or_prepare(c, entry_for(c))  # evicts b (LRU)
        assert set(cache.keys()) == {a, c}
        assert cache.stats.evictions == 1

    def test_factory_key_mismatch_rejected(self):
        cache = PreparedSolverCache(capacity=2)
        matrix = wishart_matrix(8, rng=0)
        config = HardwareConfig.ideal()
        good = PreparedKey(matrix_digest(matrix), config.cache_key(), "blockamc-1stage", 0)
        bad = PreparedKey("nope", config.cache_key(), "blockamc-1stage", 0)
        with pytest.raises(ServeError):
            cache.get_or_prepare(bad, lambda: prepare_entry(good, matrix, config))


class TestBackpressureAndLifecycle:
    @pytest.fixture
    def slow_kind(self):
        """A solver kind whose prepare blocks until released (deterministic
        way to wedge the single worker while we fill its bounded queue)."""
        started = threading.Event()
        release = threading.Event()

        class _SlowPrepared:
            def __init__(self, n):
                self.n = n

            def solve(self, b, rng=None):
                class _R:
                    x = np.zeros(self.n)
                    relative_error = 0.0
                return _R()

        class _SlowSolver:
            def __init__(self, config):
                pass

            def prepare(self, matrix, rng=None):
                started.set()
                assert release.wait(timeout=30)
                return _SlowPrepared(matrix.shape[0])

        SOLVER_KINDS["slow-test"] = lambda config: _SlowSolver(config)
        try:
            yield started, release
        finally:
            release.set()
            SOLVER_KINDS.pop("slow-test", None)

    def test_reject_policy_raises_when_full(self, slow_kind):
        started, release = slow_kind
        config = ServiceConfig(
            workers=1, queue_depth=1, backpressure="reject", max_linger_s=0.0
        )
        matrix = wishart_matrix(8, rng=0)
        b = random_vector(8, rng=1)
        with SolverService(config) as service:
            blocker = service.submit(matrix, b, solver="slow-test")
            assert started.wait(timeout=30)  # worker is wedged in prepare
            queued = service.submit(matrix, b, solver="slow-test")
            with pytest.raises(ServiceOverloadedError):
                service.submit(matrix, b, solver="slow-test")
            assert service.metrics().requests_rejected == 1
            release.set()
            blocker.result(timeout=30)
            queued.result(timeout=30)

    def test_closed_service_rejects(self):
        service = SolverService(ServiceConfig(workers=1))
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(wishart_matrix(8, rng=0), np.ones(8))

    def test_close_drains_queued_work(self):
        config = ServiceConfig(workers=1, max_linger_s=0.0)
        service = SolverService(config)
        tickets = [
            service.submit(wishart_matrix(10, rng=0), random_vector(10, rng=i))
            for i in range(6)
        ]
        service.close(wait=True)
        assert all(t.done() for t in tickets)
        assert service.metrics().requests_completed == 6

    def test_abort_fails_pending(self, slow_kind):
        started, release = slow_kind
        config = ServiceConfig(workers=1, max_linger_s=0.0)
        service = SolverService(config)
        matrix = wishart_matrix(8, rng=0)
        blocker = service.submit(matrix, np.ones(8), solver="slow-test")
        assert started.wait(timeout=30)
        pending = service.submit(matrix, np.ones(8), solver="slow-test")
        release.set()
        service.close(wait=False)
        # The wedged request finishes or fails; the queued one must resolve
        # rather than hang (either executed before shutdown or aborted).
        assert blocker.done() or blocker.exception(timeout=30) is not None
        assert pending.done() or pending.exception(timeout=30) is not None

    def test_unknown_solver_rejected_at_submit(self):
        with SolverService(ServiceConfig(workers=1)) as service:
            with pytest.raises(ServeError):
                service.submit(wishart_matrix(8, rng=0), np.ones(8), solver="nope")

    def test_failed_solve_sets_exception_and_service_survives(self):
        singular = np.zeros((8, 8))
        singular[0, 0] = 1.0
        with SolverService(ServiceConfig(workers=1)) as service:
            bad = service.submit(singular, np.ones(8))
            assert bad.exception(timeout=60) is not None
            good = service.submit(wishart_matrix(8, rng=0), random_vector(8, rng=1))
            assert good.result(timeout=60).x.shape == (8,)
            metrics = service.metrics()
        assert metrics.requests_failed >= 1
        assert metrics.requests_completed >= 1

    def test_config_validation(self):
        with pytest.raises(ServeError):
            ServiceConfig(workers=0)
        with pytest.raises(ServeError):
            ServiceConfig(backpressure="drop")
        with pytest.raises(ServeError):
            ServiceConfig(default_solver="nope")


class TestMetrics:
    def test_dict_shape_and_consistency(self):
        requests = _requests(n=8, unique=2)
        config = ServiceConfig(workers=2, max_batch_size=4)
        with SolverService(config) as service:
            service.solve_all(requests)
            metrics = service.metrics()
        payload = metrics.as_dict()
        for field in (
            "requests_submitted",
            "requests_completed",
            "batches_executed",
            "batch_size_histogram",
            "latency_p50_s",
            "latency_p95_s",
            "throughput_rps",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
        ):
            assert field in payload
        assert payload["requests_submitted"] == 8
        assert payload["requests_completed"] == 8
        assert sum(
            size * count for size, count in payload["batch_size_histogram"].items()
        ) == 8
        assert payload["latency_p95_s"] >= payload["latency_p50_s"] >= 0.0
        assert payload["throughput_rps"] > 0.0
        assert metrics.table()  # renders without error

    def test_traffic_replays_deterministically(self):
        a = mixed_traffic(10, unique_matrices=3, sizes=(8, 12), seed=5)
        b = mixed_traffic(10, unique_matrices=3, sizes=(8, 12), seed=5)
        for ra, rb in zip(a, b):
            assert ra.digest == rb.digest
            assert np.array_equal(ra.b, rb.b)
            assert ra.seed == rb.seed
        c = mixed_traffic(10, unique_matrices=3, sizes=(8, 12), seed=6)
        assert any(ra.digest != rc.digest for ra, rc in zip(a, c))

    def test_traffic_validation(self):
        with pytest.raises(ValidationError):
            mixed_traffic(0)
        with pytest.raises(ValidationError):
            mixed_traffic(4, unique_matrices=0)
        with pytest.raises(ValidationError):
            mixed_traffic(4, families=("nope",))

    def test_json_round_trip(self):
        requests = _requests(n=6, unique=2)
        config = ServiceConfig(workers=1, max_batch_size=4)
        with SolverService(config) as service:
            service.solve_all(requests)
            metrics = service.metrics()
        rebuilt = ServiceMetrics.from_json(metrics.as_json())
        assert rebuilt == metrics


class TestMetricsRecorderConcurrency:
    """The recorder's counters stay exact when many threads hammer it.

    Every service tier — thread shards, pump threads of the process
    pool, the asyncio front-end — records into one shared
    :class:`MetricsRecorder`; a lost update would silently corrupt the
    bench artifacts. Threads record a known per-bucket mix, and the
    final snapshot must account for every event exactly. Snapshots
    taken *during* the storm must also be internally consistent:
    resolved requests never exceed submitted ones.
    """

    THREADS = 8
    PER_THREAD = 250  # multiple of 5 so each bucket count is exact

    def _hammer(self, recorder, index):
        for i in range(self.PER_THREAD):
            recorder.record_submit()
            bucket = (index + i) % 5
            if bucket == 0:
                recorder.record_shed()
            elif bucket == 1:
                recorder.record_deadline_miss()
                recorder.record_done(0.002, failed=True)
            elif bucket == 2:
                recorder.record_done(0.003, failed=True)
            else:
                recorder.record_done(0.001)
            recorder.record_batch(1 + bucket)
            recorder.record_prepare(0.001)
            recorder.record_retry()

    def test_concurrent_recording_is_exact(self):
        recorder = MetricsRecorder()
        with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
            list(pool.map(lambda i: self._hammer(recorder, i), range(self.THREADS)))
        metrics = recorder.snapshot(CacheStats())
        total = self.THREADS * self.PER_THREAD
        per_bucket = total // 5
        assert metrics.requests_submitted == total
        assert metrics.requests_shed == per_bucket
        assert metrics.deadline_misses == per_bucket
        assert metrics.requests_failed == 2 * per_bucket
        assert metrics.requests_completed == 2 * per_bucket
        resolved = (
            metrics.requests_completed
            + metrics.requests_failed
            + metrics.requests_shed
        )
        assert resolved == metrics.requests_submitted
        assert metrics.retries == total
        assert sum(metrics.batch_size_histogram.values()) == total
        assert metrics.batch_size_histogram == {
            size: per_bucket for size in range(1, 6)
        }
        assert metrics.prepare_s == pytest.approx(total * 0.001)
        assert len(recorder.latencies) == 4 * per_bucket

    def test_snapshots_during_storm_stay_consistent(self):
        recorder = MetricsRecorder()
        stop = threading.Event()
        snapshots = []

        def observe():
            while not stop.is_set():
                snapshots.append(recorder.snapshot(CacheStats()))

        observer = threading.Thread(target=observe)
        observer.start()
        try:
            with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
                list(
                    pool.map(
                        lambda i: self._hammer(recorder, i), range(self.THREADS)
                    )
                )
        finally:
            stop.set()
            observer.join()
        assert snapshots
        for metrics in snapshots:
            # Each thread submits before it resolves, so no snapshot may
            # ever show more resolved requests than submitted ones.
            resolved = (
                metrics.requests_completed
                + metrics.requests_failed
                + metrics.requests_shed
            )
            assert resolved <= metrics.requests_submitted
            # A deadline miss precedes its failed completion; at most
            # one can be in flight per thread at any instant.
            assert metrics.deadline_misses <= metrics.requests_failed + self.THREADS


class TestLeanResults:
    """Lean serving mode: same solution bits, no per-step telemetry."""

    def test_lean_solve_many_matches_full(self):
        from repro.core.blockamc import BlockAMCSolver
        from repro.core.solution import LeanSolveResult

        matrix = wishart_matrix(14, rng=2)
        rhs = [random_vector(14, rng=i) for i in range(5)]
        prep = BlockAMCSolver(HardwareConfig.paper_variation()).prepare(matrix, rng=5)
        full = prep.solve_many(rhs, np.random.default_rng(0))
        lean = prep.solve_many(rhs, np.random.default_rng(0), lean=True)
        for f, l in zip(full, lean):
            assert isinstance(l, LeanSolveResult)
            assert np.array_equal(f.x, l.x)
            assert np.array_equal(f.reference, l.reference)
            assert f.relative_error == l.relative_error
            assert f.saturated == l.saturated
            assert f.analog_time_s == l.analog_time_s
            assert f.metadata["input_scale"] == l.metadata["input_scale"]
            assert l.operations == ()

    def test_lean_execute_batch_noncoalescible_fallback(self):
        from repro.core.solution import LeanSolveResult

        matrix = wishart_matrix(10, rng=1)
        hardware = HardwareConfig.paper_variation()
        key = PreparedKey(matrix_digest(matrix), hardware.cache_key(), "original-amc", 0)
        entry = prepare_entry(key, matrix, hardware)
        assert not entry.coalescible
        bs = [random_vector(10, rng=i) for i in range(3)]
        full = execute_batch(entry, bs, [7, 8, 9])
        lean = execute_batch(entry, bs, [7, 8, 9], lean=True)
        for f, l in zip(full, lean):
            assert isinstance(l, LeanSolveResult)
            assert np.array_equal(f.x, l.x)
            assert f.saturated == l.saturated
            assert f.analog_time_s == l.analog_time_s

    def test_lean_service_bit_identical_to_full_reference(self):
        requests = _requests(n=10, unique=2)
        full, _ = run_sequential(requests, ServiceConfig(workers=1))
        with SolverService(ServiceConfig(workers=2, lean_results=True)) as service:
            lean = service.solve_all(requests)
        for f, l in zip(full, lean):
            assert _identical(f, l)

    def test_lean_sequential_reference(self):
        requests = _requests(n=6, unique=2)
        config = ServiceConfig(workers=1, lean_results=True)
        lean, _ = run_sequential(requests, config)
        full, _ = run_sequential(requests, ServiceConfig(workers=1))
        for f, l in zip(full, lean):
            assert _identical(f, l)
            assert l.operations == ()


class TestMultiStageCoalescing:
    """Two-stage prepared solvers coalesce like one-stage ones."""

    @pytest.fixture(scope="class")
    def entry(self):
        matrix = wishart_matrix(16, rng=6)
        config = HardwareConfig.paper_variation()
        key = PreparedKey(
            matrix_digest(matrix), config.cache_key(), "blockamc-2stage", 0
        )
        return prepare_entry(key, matrix, config)

    def test_entry_is_coalescible(self, entry):
        assert entry.coalescible

    def test_noisy_two_stage_not_coalescible(self):
        matrix = wishart_matrix(12, rng=6)
        config = HardwareConfig.paper_variation()
        noisy = config.with_(
            opamp=config.opamp.__class__(output_noise_sigma_v=1e-4)
        )
        key = PreparedKey(
            matrix_digest(matrix), noisy.cache_key(), "blockamc-2stage", 0
        )
        assert not prepare_entry(key, matrix, noisy).coalescible

    def test_coalesced_equals_per_request(self, entry):
        bs = [random_vector(16, rng=i) for i in range(6)]
        seeds = list(range(6))
        batch = execute_batch(entry, bs, seeds)
        singles = [execute_batch(entry, [b], [s])[0] for b, s in zip(bs, seeds)]
        for a, b in zip(batch, singles):
            assert np.array_equal(a.x, b.x)
            assert a.relative_error == b.relative_error

    def test_batch_composition_invariance(self, entry):
        bs = [random_vector(16, rng=i) for i in range(8)]
        full = execute_batch(entry, bs, list(range(8)))
        sub = execute_batch(entry, [bs[5], bs[1], bs[6]], [5, 1, 6])
        for a, b in zip(sub, (full[5], full[1], full[6])):
            assert np.array_equal(a.x, b.x)

    def test_lean_two_stage_matches_full(self, entry):
        from repro.core.solution import LeanSolveResult

        bs = [random_vector(16, rng=i) for i in range(4)]
        full = execute_batch(entry, bs, [0, 1, 2, 3])
        lean = execute_batch(entry, bs, [0, 1, 2, 3], lean=True)
        for f, l in zip(full, lean):
            assert isinstance(l, LeanSolveResult)
            assert np.array_equal(f.x, l.x)
            assert f.relative_error == l.relative_error
            assert f.saturated == l.saturated
            assert f.analog_time_s == l.analog_time_s
            assert l.operations == ()

    def test_multistage_traffic_service_bit_identical(self):
        """A mixed 1-/2-stage stream through the concurrent service is
        bit-identical to the sequential reference executor."""
        requests = mixed_traffic(
            16,
            unique_matrices=4,
            sizes=(12, 16),
            solvers=("blockamc-1stage", "blockamc-2stage"),
            seed=21,
        )
        assert {r.solver for r in requests} == {
            "blockamc-1stage", "blockamc-2stage"
        }
        reference, _ = run_sequential(requests, ServiceConfig(workers=1))
        with SolverService(ServiceConfig(workers=2)) as service:
            results = service.solve_all(requests)
            metrics = service.metrics()
        for a, b in zip(reference, results):
            assert _identical(a, b)
        assert metrics.requests_completed == len(requests)

    def test_traffic_solver_mix_does_not_disturb_stream(self):
        plain = mixed_traffic(8, unique_matrices=3, sizes=(8, 12), seed=5)
        mixed = mixed_traffic(
            8,
            unique_matrices=3,
            sizes=(8, 12),
            solvers=("blockamc-1stage", "blockamc-2stage"),
            seed=5,
        )
        for a, b in zip(plain, mixed):
            assert a.digest == b.digest
            assert np.array_equal(a.b, b.b)
            assert a.seed == b.seed
        assert all(r.solver is None for r in plain)

    def test_traffic_rejects_unknown_solver(self):
        with pytest.raises(ValidationError):
            mixed_traffic(4, solvers=("warp-drive",))
        with pytest.raises(ValidationError):
            mixed_traffic(4, solvers=())


# ----------------------------------------------------------------------
# precision tiers: digest dtype, cache identity, service backend knob
# ----------------------------------------------------------------------


class TestPrecisionTierCacheIdentity:
    """Regression: the cache layers must distinguish precision tiers.

    The float64-monomorphic digest hashed every matrix's bytes *after*
    an unconditional float64 upcast, so a float32 matrix and its float64
    upcast collided — a float32-tier entry could poison the cache for a
    float64 client of the numerically identical matrix (and vice versa).
    """

    def test_f32_matrix_and_f64_upcast_digest_differently(self):
        m32 = wishart_matrix(8, rng=0).astype(np.float32)
        m64 = m32.astype(np.float64)
        assert np.array_equal(m32, m64)  # numerically identical...
        assert matrix_digest(m32) != matrix_digest(m64)  # ...distinct identity

    def test_digest_canonicalizes_exotic_dtypes_to_f64(self):
        ints = np.eye(4, dtype=np.int64)
        assert matrix_digest(ints) == matrix_digest(np.eye(4))

    def test_f32_digest_stable_across_layout(self):
        m = np.asfortranarray(wishart_matrix(8, rng=1).astype(np.float32))
        assert matrix_digest(m) == matrix_digest(np.ascontiguousarray(m))

    def test_request_preserves_f32_matrix(self):
        m = wishart_matrix(8, rng=0).astype(np.float32)
        request = SolveRequest(matrix=m, b=random_vector(8, rng=1))
        assert request.matrix.dtype == np.float32
        assert request.digest == matrix_digest(m)

    def test_prepared_key_backend_field_distinguishes_tiers(self):
        from repro.serve.service import resolve_request

        m = wishart_matrix(8, rng=0)
        request = SolveRequest(matrix=m, b=random_vector(8, rng=1))
        key64, hw64 = resolve_request(request, ServiceConfig(workers=1))
        key32, hw32 = resolve_request(
            request, ServiceConfig(workers=1, backend="numpy-f32")
        )
        assert key64.backend == "numpy"
        assert key32.backend == "numpy-f32"
        assert key64 != key32
        assert hw64.backend == "numpy" and hw32.backend == "numpy-f32"
        # the hardware cache key alone already separates the tiers
        assert key64.config_key != key32.config_key

    def test_prepared_key_backend_defaults_for_old_call_sites(self):
        key = PreparedKey("digest", "config", "blockamc-1stage", 0)
        assert key.backend == "numpy"


class TestServiceBackendKnob:
    def test_unknown_backend_fails_fast(self):
        from repro.errors import BackendError

        with pytest.raises(BackendError, match="unknown array backend"):
            ServiceConfig(workers=1, backend="warp-drive")

    def test_backend_rewrites_default_hardware(self):
        config = ServiceConfig(workers=1, backend="numpy-f32")
        assert config.default_hardware.backend == "numpy-f32"
        assert ServiceConfig(workers=1).default_hardware.backend == "numpy"

    def test_f32_service_results_typed_and_within_contract(self):
        from repro.core.backend import F32_TOLERANCE

        requests = _requests(n=6, unique=2, sizes=(8, 12), seed=3)
        reference, _ = run_sequential(requests, ServiceConfig(workers=1))
        f32_results, _ = run_sequential(
            requests, ServiceConfig(workers=1, backend="numpy-f32")
        )
        for ref, f32 in zip(reference, f32_results):
            assert ref.x.dtype == np.float64
            assert f32.x.dtype == np.float32
            assert F32_TOLERANCE.admits(f32.x, ref.x)
            # digital references are tier-independent, bit for bit
            assert f32.reference.dtype == np.float64
            assert np.array_equal(f32.reference, ref.reference)

    def test_tiers_do_not_share_cache_entries(self):
        m = wishart_matrix(12, rng=0)
        b = random_vector(12, rng=1)
        with SolverService(ServiceConfig(workers=1)) as s64:
            r64 = s64.solve_all([SolveRequest(matrix=m, b=b)])[0]
            stats64 = s64.metrics().cache
        with SolverService(ServiceConfig(workers=1, backend="numpy-f32")) as s32:
            r32 = s32.solve_all([SolveRequest(matrix=m, b=b)])[0]
        assert r64.x.dtype == np.float64
        assert r32.x.dtype == np.float32
        assert stats64.misses >= 1
