"""Tests for fault-aware matrix remapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crossbar.remapping import (
    fault_aware_permutation,
    fault_overlap,
    remap_system,
    unpermute_solution,
)
from repro.errors import MappingError
from repro.workloads.matrices import diagonally_dominant_matrix, random_vector


class TestPermutationMechanics:
    def test_permutations_are_valid(self):
        rng = np.random.default_rng(0)
        matrix = diagonally_dominant_matrix(8, rng)
        mask = rng.random((8, 8)) < 0.1
        row_perm, col_perm = fault_aware_permutation(matrix, mask)
        assert sorted(row_perm) == list(range(8))
        assert sorted(col_perm) == list(range(8))

    def test_mask_shape_checked(self):
        with pytest.raises(MappingError):
            fault_aware_permutation(np.eye(3), np.zeros((2, 2), dtype=bool))

    @given(st.integers(2, 10), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_solution_preserved(self, n, seed):
        """Whatever permutation is chosen, the remapped system has the
        same solution after unpermutation."""
        rng = np.random.default_rng(seed)
        matrix = diagonally_dominant_matrix(n, rng)
        b = random_vector(n, rng)
        mask = rng.random((n, n)) < 0.15
        row_perm, col_perm = fault_aware_permutation(matrix, mask)
        permuted, pb = remap_system(matrix, b, row_perm, col_perm)
        y = np.linalg.solve(permuted, pb)
        x = unpermute_solution(y, col_perm)
        np.testing.assert_allclose(x, np.linalg.solve(matrix, b), rtol=1e-8, atol=1e-10)

    def test_unpermute_length_checked(self):
        with pytest.raises(MappingError):
            unpermute_solution(np.ones(3), np.array([0, 1]))


class TestRemapQuality:
    def test_overlap_reduced(self):
        """The greedy remap must reduce the |entry| mass on faulty cells
        for a structured matrix with localized faults."""
        rng = np.random.default_rng(1)
        n = 16
        # Diagonal-heavy matrix: big entries on the diagonal.
        matrix = np.eye(n) + 0.05 * rng.normal(size=(n, n))
        # Faults clustered exactly on the diagonal — worst case.
        mask = np.zeros((n, n), dtype=bool)
        diag = np.arange(0, n, 2)
        mask[diag, diag] = True

        before = fault_overlap(matrix, mask)
        row_perm, col_perm = fault_aware_permutation(matrix, mask)
        after = fault_overlap(matrix[row_perm][:, col_perm], mask)
        assert after < before * 0.5

    def test_no_faults_is_safe(self):
        rng = np.random.default_rng(2)
        matrix = diagonally_dominant_matrix(6, rng)
        mask = np.zeros((6, 6), dtype=bool)
        row_perm, col_perm = fault_aware_permutation(matrix, mask)
        assert fault_overlap(matrix[row_perm][:, col_perm], mask) == 0.0

    def test_end_to_end_mvm_accuracy_gain(self):
        """Remapping before programming onto a faulty array reduces the
        forward (MVM) error vs naive placement — the MVM error is
        directly the magnitude parked on faulty cells times the input."""
        from repro.amc.config import HardwareConfig
        from repro.amc.ops import AMCOperations
        from repro.crossbar.array import CrossbarArray
        from repro.crossbar.mapping import normalize_matrix

        rng = np.random.default_rng(3)
        n = 12
        matrix, _ = normalize_matrix(diagonally_dominant_matrix(n, rng))
        v = random_vector(n, rng) * 0.2

        # Stuck-OFF faults on the diagonal (where the big entries live).
        mask = np.zeros((n, n), dtype=bool)
        mask[np.arange(0, n, 3), np.arange(0, n, 3)] = True

        ops = AMCOperations(HardwareConfig.ideal())

        def mvm_with_mask(mat, x):
            array = CrossbarArray.program(mat, rng=4, pre_normalized=True)
            g_pos = np.asarray(array.g_pos).copy()
            g_neg = np.asarray(array.g_neg).copy()
            g_pos[mask] = 0.0
            g_neg[mask] = 0.0
            faulty = CrossbarArray(g_pos, g_neg, g_unit=array.g_unit, target=array.target)
            return ops.mvm(faulty, x).output

        naive_err = np.linalg.norm(mvm_with_mask(matrix, v) - (-(matrix @ v)))
        row_perm, col_perm = fault_aware_permutation(matrix, mask)
        permuted = matrix[row_perm][:, col_perm]
        remap_out = mvm_with_mask(permuted, v[col_perm])
        remap_err = np.linalg.norm(remap_out - (-(matrix @ v))[row_perm])
        assert remap_err < naive_err
