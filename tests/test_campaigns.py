"""Tests for ``repro.campaigns`` — specs, store, runner, aggregation.

The load-bearing guarantees:

- **declarative specs** — JSON round-trip, stable content digests,
  dotted-path hardware overrides (including the variation-model codec);
- **checkpointing store** — atomic unit records, manifest pinning,
  bit-level store comparison;
- **determinism at orchestration scale** — a campaign's artifact store
  is bit-identical for 1 vs 4 process workers, and across a
  kill-then-resume boundary (both a controlled ``max_units``
  interruption and a literal ``SIGKILL`` of a CLI run);
- **legacy equivalence** — ``mode="trials"`` campaign records replay
  the hand-rolled ``run_trials`` sweeps bit-exactly (Fig. 7 acceptance
  criterion).
"""

from __future__ import annotations

import json
import math
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import BrokenExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.amc.config import HardwareConfig
from repro.analysis.accuracy import run_trials
from repro.campaigns import (
    ArtifactStore,
    CampaignSpec,
    HardwareVariant,
    RetryPolicy,
    apply_overrides,
    campaign_records,
    campaign_report,
    campaign_status,
    campaign_tables,
    execute_unit,
    expand,
    get_campaign,
    list_campaigns,
    records_to_campaign_csv,
    run_campaign,
    store_diff,
    stores_equal,
    unit_seed_sequence,
)
from repro.core.blockamc import BlockAMCSolver
from repro.core.original import OriginalAMCSolver
from repro.devices.variations import GaussianVariation, RelativeGaussianVariation
from repro.errors import CampaignError
from repro.testing import ChaosPlan
from repro.testing.chaos import CHAOS_ENV
from repro.workloads.matrices import toeplitz_matrix, wishart_matrix

#: A tiny spec most tests share: 2 families x 2 sizes = 4 units, fast.
TINY = CampaignSpec(
    name="tiny",
    title="test campaign",
    solvers=("original-amc", "blockamc-1stage"),
    families=("wishart", "toeplitz"),
    sizes=(6, 9),
    trials=2,
    seed=70,
    hardware="variation",
)


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------


class TestSpec:
    def test_json_round_trip_preserves_digest(self):
        for name in list_campaigns():
            spec = get_campaign(name)
            clone = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert clone == spec
            assert clone.digest() == spec.digest()

    def test_digest_changes_with_any_parameter(self):
        base = TINY.digest()
        import dataclasses

        for change in (
            {"seed": 71},
            {"trials": 3},
            {"sizes": (6, 10)},
            {"solvers": ("blockamc-1stage",)},
            {"hardware": "interconnect"},
            {"variants": (HardwareVariant("x", {"opamp.open_loop_gain": 1e5}),)},
        ):
            assert dataclasses.replace(TINY, **change).digest() != base

    def test_expand_is_stable_and_content_addressed(self):
        units_a = expand(TINY)
        units_b = expand(TINY)
        assert [u.key for u in units_a] == [u.key for u in units_b]
        assert len({u.key for u in units_a}) == len(units_a)
        # keys depend on the spec digest
        other = expand(get_campaign("fig7-variation"))
        assert {u.key for u in units_a}.isdisjoint({u.key for u in other})

    def test_validation_errors(self):
        with pytest.raises(CampaignError, match="unknown solver"):
            CampaignSpec(name="x", solvers=("nope",))
        with pytest.raises(CampaignError, match="unknown family"):
            CampaignSpec(name="x", families=("nope",))
        with pytest.raises(CampaignError, match="mode"):
            CampaignSpec(name="x", mode="nope")
        with pytest.raises(CampaignError, match="base hardware"):
            CampaignSpec(name="x", hardware="nope")
        with pytest.raises(CampaignError, match="trials"):
            CampaignSpec(name="x", trials=0)
        with pytest.raises(CampaignError, match="unique"):
            CampaignSpec(
                name="x",
                variants=(HardwareVariant("a"), HardwareVariant("a")),
            )
        with pytest.raises(CampaignError, match="unknown campaign"):
            get_campaign("nope")

    def test_apply_overrides_nested(self):
        config = HardwareConfig.paper_variation()
        out = apply_overrides(
            config,
            {
                "opamp.open_loop_gain": 1e5,
                "converters.dac_bits": 6,
                "parasitics.r_wire": 2.0,
            },
        )
        assert out.opamp.open_loop_gain == 1e5
        assert out.converters.dac_bits == 6
        assert out.parasitics.r_wire == 2.0
        # untouched fields keep their values
        assert out.opamp.input_offset_sigma_v == config.opamp.input_offset_sigma_v

    def test_apply_overrides_variation_codec(self):
        config = HardwareConfig.paper_ideal_mapping()
        rel = apply_overrides(
            config,
            {"programming.variation": {"kind": "relative_gaussian", "sigma_rel": 0.07}},
        )
        assert isinstance(rel.programming.variation, RelativeGaussianVariation)
        assert rel.programming.variation.sigma_rel == 0.07
        absolute = apply_overrides(
            config, {"programming.variation": {"kind": "gaussian", "sigma": 3e-6}}
        )
        assert isinstance(absolute.programming.variation, GaussianVariation)

    def test_apply_overrides_bad_path_and_codec(self):
        config = HardwareConfig.ideal()
        with pytest.raises(CampaignError, match="does not resolve"):
            apply_overrides(config, {"opamp.nope": 1.0})
        with pytest.raises(CampaignError, match="does not resolve"):
            apply_overrides(config, {"nope": 1.0})
        with pytest.raises(CampaignError, match="variation"):
            apply_overrides(config, {"programming.variation": 5.0})
        with pytest.raises(CampaignError, match="unknown variation kind"):
            apply_overrides(config, {"programming.variation": {"kind": "nope"}})

    def test_infinite_gain_survives_json_round_trip(self):
        spec = get_campaign("ablation-gain")
        clone = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        labels = {v.label: v for v in clone.variants}
        gain = labels["ideal-gain-offset-0.25mV"].overrides["opamp.open_loop_gain"]
        assert math.isinf(gain)
        assert clone.digest() == spec.digest()

    def test_unit_seed_sequence_matches_run_trials_stream(self):
        """Children after the skip equal the legacy stream's children."""
        trials = 2
        reference = np.random.SeedSequence(70)
        ref_children = reference.spawn(3 * trials * 2)  # two sizes' worth
        seq = unit_seed_sequence(70, size_index=1, trials=trials)
        unit_children = seq.spawn(3 * trials)
        for a, b in zip(ref_children[3 * trials:], unit_children):
            assert np.random.default_rng(a).integers(0, 2**63) == (
                np.random.default_rng(b).integers(0, 2**63)
            )


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------


class TestArtifactStore:
    def test_unit_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        arrays = {"relative_error": np.arange(6.0).reshape(2, 3)}
        meta = {"unit": {"key": "abc"}, "runtime": {"elapsed_s": 1.0}}
        store.write_unit("abc", arrays, meta)
        assert store.has("abc")
        assert store.completed_keys() == {"abc"}
        loaded, loaded_meta = store.load_unit("abc")
        assert np.array_equal(loaded["relative_error"], arrays["relative_error"])
        assert loaded_meta == meta

    def test_missing_unit_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no completed unit"):
            ArtifactStore(tmp_path).load_unit("missing")

    def test_read_meta_skips_arrays(self, tmp_path):
        store = ArtifactStore(tmp_path)
        meta = {"unit": {"key": "abc"}, "runtime": {"elapsed_s": 2.5}}
        store.write_unit("abc", {"x": np.ones(3)}, meta)
        assert store.read_meta("abc") == meta
        assert store.read_meta("missing") is None
        # an orphaned npz (sidecar never landed) is not completed
        store.write_unit("orphan", {"x": np.ones(3)}, {"unit": {}})
        (store.units_dir / "orphan.json").unlink()
        assert store.read_meta("orphan") is None

    def test_manifest_pins_spec_digest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write_manifest(TINY)
        store.write_manifest(TINY)  # idempotent
        import dataclasses

        other = dataclasses.replace(TINY, seed=99)
        with pytest.raises(CampaignError, match="holds campaign"):
            store.write_manifest(other)

    def test_status_rejects_mismatched_store(self, tmp_path):
        """A scale/store mix-up reads as a digest error, not 'all pending'."""
        import dataclasses

        store = ArtifactStore(tmp_path)
        store.write_manifest(TINY)
        other = dataclasses.replace(TINY, trials=3)
        with pytest.raises(CampaignError, match="holds campaign"):
            campaign_status(other, store)
        with pytest.raises(CampaignError, match="holds campaign"):
            campaign_records(other, store)
        # a fresh (manifest-less) directory still reports plain status
        fresh = campaign_status(TINY, ArtifactStore(tmp_path / "fresh"))
        assert fresh.completed_units == 0

    def test_stores_equal_and_diff(self, tmp_path):
        a = ArtifactStore(tmp_path / "a")
        b = ArtifactStore(tmp_path / "b")
        a.write_manifest(TINY)
        b.write_manifest(TINY)
        arrays = {"x": np.ones(3)}
        meta = {"unit": {"key": "u1"}, "runtime": {"pid": 1}}
        a.write_unit("u1", arrays, meta)
        b.write_unit("u1", arrays, {"unit": {"key": "u1"}, "runtime": {"pid": 999}})
        assert stores_equal(a, b)  # runtime metadata is excluded
        b.write_unit("u2", arrays, meta)
        assert not stores_equal(a, b)
        assert any("only in" in line for line in store_diff(a, b))
        a.write_unit("u2", {"x": np.zeros(3)}, meta)
        assert any("differs" in line for line in store_diff(a, b))


# ----------------------------------------------------------------------
# runner determinism
# ----------------------------------------------------------------------


class TestCampaignDeterminism:
    def test_bit_identical_to_legacy_run_trials(self, tmp_path):
        """The Fig. 7 acceptance criterion, at test scale: campaign
        records equal the legacy sequential sweep record for record."""
        run_campaign(TINY, tmp_path, workers=0)
        grouped = campaign_records(TINY, ArtifactStore(tmp_path))
        for family, factory in (
            ("wishart", wishart_matrix),
            ("toeplitz", toeplitz_matrix),
        ):
            legacy = run_trials(
                {
                    "original-amc": lambda: OriginalAMCSolver(
                        HardwareConfig.paper_variation()
                    ),
                    "blockamc-1stage": lambda: BlockAMCSolver(
                        HardwareConfig.paper_variation()
                    ),
                },
                lambda n, rng: factory(n, rng),
                TINY.sizes,
                TINY.trials,
                seed=TINY.seed,
            )
            campaign = grouped[("base", family)]
            key = lambda r: (r.size, r.trial, r.solver)
            assert sorted(map(key, legacy)) == sorted(map(key, campaign))
            by_key_campaign = {key(r): r for r in campaign}
            for record in legacy:
                match = by_key_campaign[key(record)]
                assert record.relative_error == match.relative_error, key(record)
                assert record.saturated == match.saturated
                assert record.analog_time_s == match.analog_time_s

    def test_one_vs_four_workers_bit_identical(self, tmp_path):
        run_campaign(TINY, tmp_path / "w1", workers=1)
        run_campaign(TINY, tmp_path / "w4", workers=4)
        a, b = ArtifactStore(tmp_path / "w1"), ArtifactStore(tmp_path / "w4")
        assert stores_equal(a, b), store_diff(a, b)

    def test_interrupt_then_resume_bit_identical(self, tmp_path):
        reference = tmp_path / "ref"
        run_campaign(TINY, reference, workers=0)

        resumable = tmp_path / "resumable"
        partial = run_campaign(TINY, resumable, workers=0, max_units=1)
        assert partial.completed_units == 1 and not partial.finished
        status = campaign_status(TINY, ArtifactStore(resumable))
        assert status.completed_units == 1 and len(status.pending) == 3

        resumed = run_campaign(TINY, resumable, workers=2)
        assert resumed.finished
        assert resumed.skipped_units == 1  # no recomputation
        assert resumed.completed_units == 3
        assert stores_equal(ArtifactStore(reference), ArtifactStore(resumable))

    def test_status_progress_rate_and_eta(self, tmp_path):
        """Progress/rate/ETA derive from the completed units' sidecars."""
        partial = run_campaign(TINY, tmp_path, workers=0, max_units=2)
        assert partial.completed_units == 2
        status = campaign_status(TINY, ArtifactStore(tmp_path))
        assert status.progress_percent == pytest.approx(50.0)
        assert status.completed_elapsed_s > 0.0
        assert status.units_per_s > 0.0
        # ETA = remaining units x mean completed unit time.
        mean_unit_s = status.completed_elapsed_s / status.completed_units
        assert status.eta_s == pytest.approx(2 * mean_unit_s)

        run_campaign(TINY, tmp_path, workers=0)
        done = campaign_status(TINY, ArtifactStore(tmp_path))
        assert done.progress_percent == pytest.approx(100.0)
        assert done.eta_s == pytest.approx(0.0)

    def test_status_estimates_before_any_unit_completed(self, tmp_path):
        status = campaign_status(TINY, ArtifactStore(tmp_path))
        assert status.progress_percent == 0.0
        assert status.units_per_s == 0.0
        assert status.eta_s is None  # no basis for an estimate yet

    def test_rerun_of_finished_campaign_is_noop(self, tmp_path):
        run_campaign(TINY, tmp_path, workers=0)
        again = run_campaign(TINY, tmp_path, workers=0)
        assert again.finished
        assert again.completed_units == 0
        assert again.skipped_units == again.total_units

    def test_rhs_mode_deterministic_across_workers(self, tmp_path):
        spec = get_campaign("serving-rhs")
        run_campaign(spec, tmp_path / "a", workers=0)
        run_campaign(spec, tmp_path / "b", workers=2)
        assert stores_equal(ArtifactStore(tmp_path / "a"), ArtifactStore(tmp_path / "b"))

    def test_rhs_mode_matches_direct_prepared_solve(self, tmp_path):
        """rhs units go through the real prepared-cache multi-RHS path."""
        spec = CampaignSpec(
            name="rhs-tiny",
            mode="rhs",
            solvers=("blockamc-1stage",),
            families=("wishart",),
            sizes=(8,),
            trials=3,
            seed=7,
            hardware="variation",
        )
        (unit,) = expand(spec)
        arrays, meta = execute_unit(spec, unit)
        assert arrays["relative_error"].shape == (1, 3)
        # reproduce by hand with the same derivation
        from repro.workloads.matrices import random_vector

        seq = np.random.SeedSequence(7, spawn_key=(0, 0, 0))
        children = seq.spawn(4)
        matrix = wishart_matrix(8, np.random.default_rng(children[0]))
        bs = [random_vector(8, np.random.default_rng(children[1 + t])) for t in range(3)]
        gen = np.random.default_rng(7)  # prepare_entry's single prep stream
        prep = BlockAMCSolver(HardwareConfig.paper_variation()).prepare(matrix, gen)
        prep.solve(np.ones(8), gen)  # the warm-up solve continues that stream
        results = prep.solve_many(bs, np.random.default_rng(0), lean=True)
        for t, result in enumerate(results):
            assert arrays["relative_error"][0, t] == result.relative_error

    def test_rhs_mode_two_stage_matches_direct_prepared_solve(self, tmp_path):
        """Multi-stage rhs units drive the coalesced solve_many path."""
        from repro.core.multistage import MultiStageSolver
        from repro.workloads.matrices import random_vector

        spec = CampaignSpec(
            name="rhs-2stage-tiny",
            mode="rhs",
            solvers=("blockamc-2stage",),
            families=("wishart",),
            sizes=(12,),
            trials=3,
            seed=13,
            hardware="variation",
        )
        (unit,) = expand(spec)
        arrays, meta = execute_unit(spec, unit)
        assert arrays["relative_error"].shape == (1, 3)
        seq = np.random.SeedSequence(13, spawn_key=(0, 0, 0))
        children = seq.spawn(4)
        matrix = wishart_matrix(12, np.random.default_rng(children[0]))
        bs = [
            random_vector(12, np.random.default_rng(children[1 + t]))
            for t in range(3)
        ]
        gen = np.random.default_rng(13)  # prepare_entry's single prep stream
        prep = MultiStageSolver(HardwareConfig.paper_variation(), stages=2).prepare(
            matrix, gen
        )
        prep.solve(np.ones(12), gen)  # the warm-up solve continues that stream
        results = prep.solve_many(bs, np.random.default_rng(0), lean=True)
        for t, result in enumerate(results):
            assert arrays["relative_error"][0, t] == result.relative_error

    def test_two_stage_rhs_campaign_registered(self):
        spec = get_campaign("serving-rhs-2stage")
        assert spec.mode == "rhs"
        assert "blockamc-2stage" in spec.solvers
        assert len(expand(spec)) == len(spec.variants) * len(spec.families) * len(
            spec.sizes
        )

    def test_worker_failure_propagates(self, tmp_path):
        """A unit that cannot execute fails the run, not silently."""
        bad = CampaignSpec(
            name="bad",
            solvers=("blockamc-1stage",),
            families=("poisson",),
            sizes=(3,),  # poisson_1d needs n >= 1; size 3 fine — use singular trick
            trials=1,
            seed=0,
            hardware="variation",
            variants=(
                # zero-size DAC? use an invalid override instead: negative bits
                HardwareVariant("bad-bits", {"converters.dac_bits": -4}),
            ),
        )
        with pytest.raises(Exception):
            run_campaign(bad, tmp_path, workers=0)


class TestSigkillResume:
    def test_sigkill_mid_campaign_then_resume(self, tmp_path):
        """A literally killed campaign process resumes to the same bits."""
        spec_name = "fig9-interconnect"  # slowest quick campaign (2-stage fallback)
        reference = tmp_path / "ref"
        run_campaign(get_campaign(spec_name), reference, workers=0)

        killed_root = tmp_path / "killed"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign", "run", spec_name,
                "--store", str(killed_root),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Kill as soon as the first unit commits (or give up waiting and
        # let the run finish — the resume assertions hold either way).
        units_dir = killed_root / "units"
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and proc.poll() is None:
            if units_dir.exists() and any(units_dir.glob("*.json")):
                proc.send_signal(signal.SIGKILL)
                break
            time.sleep(0.005)
        proc.wait(timeout=60.0)

        spec = get_campaign(spec_name)
        resumed = run_campaign(spec, killed_root, workers=0)
        assert resumed.finished
        assert stores_equal(ArtifactStore(reference), ArtifactStore(killed_root)), (
            store_diff(ArtifactStore(reference), ArtifactStore(killed_root))
        )


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------


class TestAggregation:
    @pytest.fixture(scope="class")
    def finished(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("campaign")
        run_campaign(TINY, root, workers=0)
        return ArtifactStore(root)

    def test_strict_requires_completion(self, tmp_path):
        run_campaign(TINY, tmp_path, workers=0, max_units=1)
        store = ArtifactStore(tmp_path)
        with pytest.raises(CampaignError, match="incomplete"):
            campaign_records(TINY, store)
        partial = campaign_records(TINY, store, strict=False)
        assert sum(len(v) for v in partial.values()) == 1 * TINY.trials * 2

    def test_records_shape_and_order(self, finished):
        grouped = campaign_records(TINY, finished)
        assert set(grouped) == {("base", "wishart"), ("base", "toeplitz")}
        records = grouped[("base", "wishart")]
        assert len(records) == len(TINY.sizes) * TINY.trials * len(TINY.solvers)
        sizes = sorted({r.size for r in records})
        assert sizes == sorted(TINY.sizes)

    def test_tables_report_csv(self, finished, tmp_path):
        tables = campaign_tables(TINY, finished)
        assert "tiny [base] wishart" in tables
        report = campaign_report(TINY, finished)
        assert report.startswith("# Campaign report: tiny")
        assert "| size |" in report
        written = records_to_campaign_csv(TINY, finished, tmp_path / "records.csv")
        assert len(written) == 2  # one per (variant, family)
        for path in written:
            assert path.exists()
            assert "relative_error" in path.read_text().splitlines()[0]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCampaignCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig7-variation" in out and "ablation-gain" in out

    def test_run_status_report_diff(self, tmp_path, capsys):
        from repro.cli import main

        store_a = str(tmp_path / "a")
        store_b = str(tmp_path / "b")
        assert main(["campaign", "run", "fig7-variation", "--store", store_a,
                     "--max-units", "2"]) == 0
        assert main(["campaign", "status", "fig7-variation", "--store", store_a]) == 1
        assert "pending" in capsys.readouterr().out
        assert main(["campaign", "resume", "fig7-variation", "--store", store_a,
                     "--workers", "2"]) == 0
        assert main(["campaign", "status", "fig7-variation", "--store", store_a]) == 0
        capsys.readouterr()
        out_md = tmp_path / "report.md"
        assert main(["campaign", "report", "fig7-variation", "--store", store_a,
                     "--out", str(out_md)]) == 0
        assert out_md.exists()
        assert "fig7-variation" in capsys.readouterr().out
        assert main(["campaign", "run", "fig7-variation", "--store", store_b]) == 0
        capsys.readouterr()
        assert main(["campaign", "diff", store_a, store_b]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_diff_detects_divergence(self, tmp_path, capsys):
        from repro.cli import main

        store_a = ArtifactStore(tmp_path / "a")
        store_b = ArtifactStore(tmp_path / "b")
        store_a.write_manifest(TINY)
        store_b.write_manifest(TINY)
        store_a.write_unit("u", {"x": np.ones(2)}, {"unit": {}})
        store_b.write_unit("u", {"x": np.zeros(2)}, {"unit": {}})
        assert main(["campaign", "diff", str(store_a.root), str(store_b.root)]) == 1
        assert "differs" in capsys.readouterr().out


# ----------------------------------------------------------------------
# retry, quarantine, and chaos
# ----------------------------------------------------------------------

#: A hardware override that fails at unit execution (negative DAC bits),
#: while the spec itself constructs and expands fine — a poison unit.
_BAD = HardwareVariant("bad-bits", {"converters.dac_bits": -4})


def _poison_spec(name, variants):
    return CampaignSpec(
        name=name,
        solvers=("blockamc-1stage",),
        families=("wishart",),
        sizes=(6,),
        trials=1,
        seed=0,
        hardware="variation",
        variants=variants,
    )


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_s=0.1, backoff_multiplier=2.0, max_backoff_s=0.3
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(10) == pytest.approx(0.3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_s": -1.0},
            {"backoff_multiplier": 0.5},
            {"max_backoff_s": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(CampaignError):
            RetryPolicy(**kwargs)


class TestQuarantine:
    def test_poison_unit_quarantined_instead_of_aborting(self, tmp_path):
        spec = _poison_spec("poison", (_BAD,))
        retry = RetryPolicy(max_attempts=2, backoff_s=0.0)
        run = run_campaign(spec, tmp_path, workers=0, retry=retry)
        assert run.quarantined_units == 1
        assert run.completed_units == 0
        assert not run.finished  # quarantined units keep the campaign open
        store = ArtifactStore(tmp_path)
        (record,) = store.quarantined().values()
        assert record["attempts"] == 2
        assert record["variant"] == "bad-bits"
        assert "error" in record
        status = campaign_status(spec, store)
        assert len(status.quarantined) == 1
        assert status.quarantined[0].variant_label == "bad-bits"
        assert not status.pending  # quarantined is not pending
        assert not status.finished

    def test_rerun_skips_quarantined_units(self, tmp_path):
        spec = _poison_spec("poison", (_BAD,))
        retry = RetryPolicy(max_attempts=1, backoff_s=0.0)
        run_campaign(spec, tmp_path, workers=0, retry=retry)
        again = run_campaign(spec, tmp_path, workers=0, retry=retry)
        # Nothing attempted: the poison unit stays parked in quarantine.
        assert again.quarantined_units == 0
        assert again.completed_units == 0
        assert not again.finished

    def test_requeue_quarantined_retries_again(self, tmp_path):
        spec = _poison_spec("poison", (_BAD,))
        retry = RetryPolicy(max_attempts=1, backoff_s=0.0)
        run_campaign(spec, tmp_path, workers=0, retry=retry)
        again = run_campaign(
            spec, tmp_path, workers=0, retry=retry, requeue_quarantined=True
        )
        # Re-attempted (still poison), re-quarantined.
        assert again.quarantined_units == 1

    def test_mixed_good_and_poison_units(self, tmp_path):
        spec = _poison_spec("mixed", (HardwareVariant("ok", {}), _BAD))
        retry = RetryPolicy(max_attempts=2, backoff_s=0.0)
        run = run_campaign(spec, tmp_path, workers=0, retry=retry)
        assert run.completed_units == 1
        assert run.quarantined_units == 1
        store = ArtifactStore(tmp_path)
        assert len(store.completed_keys()) == 1
        assert len(store.quarantined_keys()) == 1

    def test_quarantine_excluded_from_store_equality(self, tmp_path):
        spec = _poison_spec("mixed", (HardwareVariant("ok", {}), _BAD))
        retry = RetryPolicy(max_attempts=1, backoff_s=0.0)
        run_campaign(spec, tmp_path / "a", workers=0, retry=retry)
        run_campaign(spec, tmp_path / "b", workers=0, retry=retry)
        store_a = ArtifactStore(tmp_path / "a")
        store_b = ArtifactStore(tmp_path / "b")
        assert stores_equal(store_a, store_b)
        # Quarantine records are runner bookkeeping, not results.
        store_b.clear_quarantine()
        assert stores_equal(store_a, store_b)

    def test_without_retry_first_failure_still_propagates(self, tmp_path):
        spec = _poison_spec("poison", (_BAD,))
        with pytest.raises(Exception):
            run_campaign(spec, tmp_path, workers=0)
        assert ArtifactStore(tmp_path).quarantined_keys() == set()


class TestPoolCrashRetryResume:
    """SIGKILLed pool workers: retry to convergence, resume with zero
    recompute, and bit-identical artifacts (the chaos acceptance test)."""

    def test_kill_without_retry_breaks_the_run(self, tmp_path, monkeypatch):
        plan = ChaosPlan(
            seed=1, worker_kill_rate=1.0, state_dir=str(tmp_path / "chaos")
        )
        monkeypatch.setenv(CHAOS_ENV, plan.chaos_env()[CHAOS_ENV])
        with pytest.raises(BrokenExecutor):
            run_campaign(TINY, tmp_path / "store", workers=2)

    def test_sigkill_storm_retries_to_bitidentical_store(
        self, tmp_path, monkeypatch
    ):
        reference = tmp_path / "ref"
        run_campaign(TINY, reference, workers=0)

        plan = ChaosPlan(
            seed=1, worker_kill_rate=1.0, state_dir=str(tmp_path / "chaos")
        )
        monkeypatch.setenv(CHAOS_ENV, plan.chaos_env()[CHAOS_ENV])
        chaotic = tmp_path / "chaotic"
        run = run_campaign(
            TINY,
            chaotic,
            workers=2,
            retry=RetryPolicy(max_attempts=10, backoff_s=0.01, max_backoff_s=0.05),
        )
        assert run.finished
        assert run.quarantined_units == 0
        assert run.completed_units == run.total_units
        # Every unit's worker really was SIGKILLed once before committing.
        assert plan.injected("kill") == run.total_units >= 2

        # Fault history never shows in the artifacts.
        assert stores_equal(ArtifactStore(reference), ArtifactStore(chaotic))

        # Resume after the chaos run: zero recompute.
        monkeypatch.delenv(CHAOS_ENV)
        resumed = run_campaign(TINY, chaotic, workers=0)
        assert resumed.completed_units == 0
        assert resumed.skipped_units == resumed.total_units

    def test_torn_writes_retry_to_bitidentical_store(self, tmp_path, monkeypatch):
        reference = tmp_path / "ref"
        run_campaign(TINY, reference, workers=0)

        plan = ChaosPlan(
            seed=2, torn_write_rate=1.0, state_dir=str(tmp_path / "chaos")
        )
        monkeypatch.setenv(CHAOS_ENV, plan.chaos_env()[CHAOS_ENV])
        chaotic = tmp_path / "chaotic"
        run = run_campaign(
            TINY,
            chaotic,
            workers=0,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        assert run.finished and run.quarantined_units == 0
        assert plan.injected("torn") == run.total_units
        assert stores_equal(ArtifactStore(reference), ArtifactStore(chaotic))

    def test_inline_chaos_never_kills_the_driver(self, tmp_path, monkeypatch):
        plan = ChaosPlan(
            seed=3, worker_kill_rate=1.0, state_dir=str(tmp_path / "chaos")
        )
        monkeypatch.setenv(CHAOS_ENV, plan.chaos_env()[CHAOS_ENV])
        # Inline execution happens in this very process; the driver-pid
        # guard must skip every kill or this test dies with the run.
        run = run_campaign(TINY, tmp_path / "store", workers=0)
        assert run.finished
        assert plan.injected("kill") == 0
