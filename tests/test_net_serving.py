"""Tests for ``repro.serve.net`` — the TCP front-end over process workers.

The load-bearing guarantees, mirroring the acceptance criteria:

- **bit-exact wire transport** — frames carry raw float64 bytes; a
  network round-trip returns the server's exact bits;
- **bit-identity under concurrency** — results served over TCP through
  process workers equal :func:`repro.serve.run_sequential`, including
  under chaos (worker SIGKILL + slow-call storms);
- **typed failures** — every refusal and fault surfaces as a typed
  :class:`~repro.errors.ReproError` subclass over the wire, never a
  bare traceback or a hung ticket;
- **admission control** — per-tenant token buckets and deadline
  propagation act before work reaches a worker.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.core.solution import LeanSolveResult
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    QuotaExceededError,
    ReproError,
    ServeError,
    SolverError,
    ValidationError,
    WireProtocolError,
    error_from_wire,
    error_to_wire,
    is_retryable,
)
from repro.serve import ResiliencePolicy, ServiceConfig, run_sequential
from repro.serve.net import (
    AttachedBlock,
    BlockRef,
    NetClient,
    NetServer,
    NetServerConfig,
    QuotaPolicy,
    TenantQuotas,
    TokenBucket,
    publish_block,
)
from repro.serve.net.protocol import (
    MAX_FRAME_BYTES,
    STATUS_UNKNOWN_DIGEST,
    array_from_bytes,
    array_to_bytes,
    decode_frame,
    encode_frame,
    recv_frame,
)
from repro.serve.net.quotas import ANONYMOUS_TENANT
from repro.testing.chaos import CHAOS_ENV, ChaosPlan
from repro.workloads.traffic import drive_network, mixed_traffic


def _requests(n=16, unique=3, sizes=(12, 16), seed=0, **kwargs):
    return mixed_traffic(n, unique_matrices=unique, sizes=sizes, seed=seed, **kwargs)


def _server_config(**kwargs):
    service = kwargs.pop("service", None) or ServiceConfig(
        workers=kwargs.pop("workers", 2), max_batch_size=8
    )
    return NetServerConfig(service=service, **kwargs)


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------


class TestWireProtocol:
    def test_frame_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(37)
        m = rng.standard_normal((7, 7)) * 1e-308  # denormal-adjacent bits
        header = {"type": "solve", "id": 3, "n": 37, "tenant": "t"}
        frame = encode_frame(header, [array_to_bytes(x), array_to_bytes(m)])
        decoded, blobs = decode_frame(frame[4:])
        assert decoded["type"] == "solve" and decoded["id"] == 3
        assert decoded["blobs"] == [37 * 8, 49 * 8]
        assert np.array_equal(array_from_bytes(blobs[0], (37,)), x)
        assert np.array_equal(array_from_bytes(blobs[1], (7, 7)), m)

    def test_encode_rewrites_stale_blob_lengths(self):
        # A desynchronized header cannot poison the frame: lengths are
        # always derived from the actual payload.
        frame = encode_frame({"type": "x", "blobs": [999]}, [b"abcd"])
        header, blobs = decode_frame(frame[4:])
        assert header["blobs"] == [4]
        assert bytes(blobs[0]) == b"abcd"

    def test_decode_rejects_malformed_frames(self):
        with pytest.raises(WireProtocolError, match="no header length"):
            decode_frame(b"\x00")
        with pytest.raises(WireProtocolError, match="overruns"):
            decode_frame(b"\x00\x00\x00\xff{}")
        with pytest.raises(WireProtocolError, match="not valid JSON"):
            decode_frame(b"\x00\x00\x00\x03nah")
        with pytest.raises(WireProtocolError, match="must be an object"):
            decode_frame(b"\x00\x00\x00\x02[]")
        # blob lengths overrunning the body
        bad = encode_frame({"type": "x"}, [b"abcd"])[4:-2]
        with pytest.raises(WireProtocolError, match="overrun"):
            decode_frame(bad)
        # trailing bytes not covered by any declared blob
        with pytest.raises(WireProtocolError, match="trailing"):
            decode_frame(encode_frame({"type": "x"})[4:] + b"zz")

    def test_array_from_bytes_validates_byte_count(self):
        with pytest.raises(WireProtocolError, match="expected"):
            array_from_bytes(b"\x00" * 24, (4,))

    def test_recv_frame_rejects_hostile_length_prefix(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(WireProtocolError, match="MAX_FRAME_BYTES"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_recv_frame_clean_eof_is_none(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"type": "ping", "id": 1}))
            a.close()
            assert recv_frame(b) is not None
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_wire_error_codec_round_trips_types(self):
        exc = QuotaExceededError("too chatty", retry_after_s=1.5)
        rebuilt = error_from_wire(error_to_wire(exc))
        assert isinstance(rebuilt, QuotaExceededError)
        assert rebuilt.retry_after_s == 1.5
        assert is_retryable(rebuilt)
        plain = error_from_wire(error_to_wire(SolverError("diverged")))
        assert isinstance(plain, SolverError)
        assert not is_retryable(plain)
        unknown = error_from_wire({"code": "NoSuchError", "message": "?"})
        assert isinstance(unknown, ServeError)


# ----------------------------------------------------------------------
# token buckets
# ----------------------------------------------------------------------


class TestTokenBuckets:
    def test_burst_then_dry_with_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(QuotaPolicy(rate_per_s=2.0, burst=3), clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry_after = bucket.try_acquire()
        assert retry_after == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.5)
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(QuotaPolicy(rate_per_s=10.0, burst=2), clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        quotas = TenantQuotas(QuotaPolicy(rate_per_s=1.0, burst=1), clock)
        quotas.acquire("a")
        with pytest.raises(QuotaExceededError) as info:
            quotas.acquire("a")
        assert info.value.retry_after_s == pytest.approx(1.0)
        assert isinstance(info.value, OverloadedError)  # typed as overload
        quotas.acquire("b")  # unaffected by a's exhaustion
        assert quotas.tokens("a") == pytest.approx(0.0)

    def test_anonymous_tenant_shares_one_bucket(self):
        clock = FakeClock()
        quotas = TenantQuotas(QuotaPolicy(rate_per_s=1.0, burst=1), clock)
        quotas.acquire(None)
        with pytest.raises(QuotaExceededError, match=ANONYMOUS_TENANT):
            quotas.acquire(None)

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            QuotaPolicy(rate_per_s=0.0, burst=4)
        with pytest.raises(ValidationError):
            QuotaPolicy(rate_per_s=1.0, burst=0.5)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# shared-memory transport
# ----------------------------------------------------------------------


class TestSharedMemoryTransport:
    def test_publish_attach_round_trip_bit_exact(self):
        rng = np.random.default_rng(1)
        xs = rng.standard_normal((3, 5))
        refs = rng.standard_normal((3, 5))
        ref = publish_block(xs, refs)
        block = AttachedBlock(ref)
        for i in range(3):
            x, reference = block.row(i)
            assert np.array_equal(x, xs[i])
            assert np.array_equal(reference, refs[i])
        # consuming the last row released the segment
        assert block.released
        if not ref.inline:
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=ref.name)

    def test_single_row_block(self):
        x = np.arange(4.0)
        ref = publish_block(x, x + 1)
        block = AttachedBlock(ref)
        got_x, got_ref = block.row(0)
        assert np.array_equal(got_x, x) and np.array_equal(got_ref, x + 1)
        assert block.released

    def test_release_is_idempotent_and_guards_rows(self):
        ref = publish_block(np.ones((2, 3)), np.zeros((2, 3)))
        block = AttachedBlock(ref)
        block.release()
        block.release()
        assert block.released
        with pytest.raises(ServeError, match="released"):
            block.row(0)

    def test_row_bounds_checked(self):
        block = AttachedBlock(publish_block(np.ones((2, 3)), np.ones((2, 3))))
        with pytest.raises(ServeError, match="out of range"):
            block.row(2)
        block.release()

    def test_inline_fallback_preserves_bits(self):
        rng = np.random.default_rng(2)
        stacked = np.stack([rng.standard_normal((2, 4)) for _ in range(2)])
        ref = BlockRef(name=None, batch=2, n=4, payload=stacked.tobytes())
        assert ref.inline
        block = AttachedBlock(ref)
        x, reference = block.row(1)
        assert np.array_equal(x, stacked[0, 1])
        assert np.array_equal(reference, stacked[1, 1])

    def test_mismatched_blocks_rejected(self):
        with pytest.raises(ServeError, match="disagree"):
            publish_block(np.ones((2, 3)), np.ones((3, 3)))


# ----------------------------------------------------------------------
# end-to-end serving
# ----------------------------------------------------------------------


class TestNetServing:
    def test_round_trip_bit_identical_to_sequential(self):
        requests = _requests(n=20, unique=4)
        config = _server_config(workers=2)
        reference, _ = run_sequential(requests, config.service)
        with NetServer(config) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                results = client.solve_all(requests, timeout=120.0)
                metrics = client.metrics()
                assert client.ping()
                alive = client.alive_workers()
        for res, ref in zip(results, reference):
            assert isinstance(res, LeanSolveResult)
            assert np.array_equal(res.x, ref.x)
            assert np.array_equal(res.reference, ref.reference)
            assert res.relative_error == ref.relative_error
        assert metrics.requests_completed == len(requests)
        assert metrics.requests_failed == 0
        assert metrics.batches_executed >= 1
        assert alive == 2

    def test_ticket_telemetry_and_status(self):
        requests = _requests(n=4, unique=1)
        with NetServer(_server_config(workers=1)) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                tickets = [client.submit_request(r) for r in requests]
                for ticket in tickets:
                    result = ticket.result(60.0)
                    assert ticket.status == "ok"
                    assert ticket.telemetry["solver"] == result.solver
                    assert ticket.telemetry["batch"] >= 1

    def test_deadline_propagates_over_the_wire(self):
        requests = _requests(n=3, unique=1, deadline_s=1e-5)
        with NetServer(_server_config(workers=1)) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                for request in requests:
                    exc = client.submit_request(request).exception(60.0)
                    assert isinstance(exc, DeadlineExceededError)
                metrics = client.metrics()
        assert metrics.deadline_misses == len(requests)

    def test_quota_enforced_per_tenant(self):
        quota = QuotaPolicy(rate_per_s=0.001, burst=2)
        with NetServer(_server_config(workers=1, quota=quota)) as server:
            host, port = server.address
            matrix = _requests(n=1)[0].matrix
            n = matrix.shape[0]
            with NetClient(host, port, tenant="chatty") as client:
                first = [
                    client.submit(matrix, np.ones(n), seed=i) for i in range(2)
                ]
                for ticket in first:
                    ticket.result(60.0)
                exc = client.submit(matrix, np.ones(n), seed=9).exception(60.0)
                assert isinstance(exc, QuotaExceededError)
                assert exc.retry_after_s is not None and exc.retry_after_s > 0.0
                # another tenant still has its full burst
                other = client.submit(
                    matrix, np.ones(n), seed=3, tenant="quiet"
                )
                assert other.result(60.0) is not None

    def test_unknown_digest_without_payload_is_typed(self):
        # Digest-only submit for a matrix the worker has never seen: the
        # wire answers with the typed coherency status (the client
        # normally reacts by re-sending the payload).
        with NetServer(_server_config(workers=1)) as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=30.0)
            try:
                header = {
                    "type": "solve",
                    "id": 1,
                    "n": 8,
                    "digest": "f" * 64,
                    "seed": 0,
                }
                sock.sendall(encode_frame(header, [array_to_bytes(np.ones(8))]))
                response, _ = recv_frame(sock)
                assert response["type"] == "error"
                assert response["status"] == STATUS_UNKNOWN_DIGEST
                assert is_retryable(error_from_wire(response["error"]))
            finally:
                sock.close()

    def test_malformed_solve_is_typed_not_fatal(self):
        with NetServer(_server_config(workers=1)) as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=30.0)
            try:
                sock.sendall(encode_frame({"type": "solve", "id": 7, "n": -2}))
                response, _ = recv_frame(sock)
                assert response["type"] == "error" and response["id"] == 7
                assert isinstance(
                    error_from_wire(response["error"]), WireProtocolError
                )
                # the connection survived the bad request
                sock.sendall(encode_frame({"type": "ping", "id": 8}))
                response, _ = recv_frame(sock)
                assert response["type"] == "pong" and response["id"] == 8
            finally:
                sock.close()

    def test_broken_framing_answers_typed_then_hangs_up(self):
        with NetServer(_server_config(workers=1)) as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=30.0)
            try:
                # Declared frame length smaller than the actual header
                # region — undecodable, the byte stream is toast.
                sock.sendall(b"\x00\x00\x00\x05\x00\x00\x00\xffgarbage")
                response, _ = recv_frame(sock)
                assert response["type"] == "error" and response["id"] is None
                assert recv_frame(sock) is None  # server hung up
            finally:
                sock.close()

    def test_metrics_json_round_trip_over_wire(self):
        requests = _requests(n=6, unique=2)
        with NetServer(_server_config(workers=1)) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                client.solve_all(requests, timeout=120.0)
                metrics = client.metrics()
        from repro.serve import ServiceMetrics

        assert ServiceMetrics.from_json(metrics.as_json()) == metrics
        assert metrics.requests_submitted == len(requests)

    def test_drive_network_validation(self):
        with pytest.raises(ValidationError):
            drive_network(None, [], max_rounds=0)
        with pytest.raises(ValidationError):
            drive_network(None, [], backoff_s=-1.0)


# ----------------------------------------------------------------------
# chaos: worker kills + slow storms over the wire
# ----------------------------------------------------------------------


class TestNetChaos:
    def test_storm_failures_typed_and_successes_bit_identical(
        self, tmp_path, monkeypatch
    ):
        """The acceptance criterion: mixed traffic under worker SIGKILL +
        slow-call storm + injected solve failures. Every outcome must be
        a result or a typed error, and every success must be
        bit-identical to the sequential reference."""
        plan = ChaosPlan(
            seed=7,
            solve_failure_rate=0.15,
            slow_call_rate=0.2,
            slow_call_s=0.02,
            worker_kill_rate=0.08,
            state_dir=str(tmp_path),
        )
        monkeypatch.setenv(CHAOS_ENV, list(plan.chaos_env().values())[0])
        requests = _requests(n=40, unique=4, sizes=(12, 16), seed=1)
        service = ServiceConfig(
            workers=2,
            max_batch_size=8,
            resilience=ResiliencePolicy(breaker_threshold=0, max_shard_restarts=10),
        )
        reference, _ = run_sequential(requests, ServiceConfig(workers=2))
        with NetServer(NetServerConfig(service=service)) as server:
            host, port = server.address
            with NetClient(host, port, timeout_s=120.0) as client:
                outcomes = drive_network(
                    client, requests, max_rounds=8, timeout_s=120.0
                )
                metrics = client.metrics()
        monkeypatch.delenv(CHAOS_ENV)

        assert len(outcomes) == len(requests)
        successes = 0
        for outcome, ref in zip(outcomes, reference):
            if isinstance(outcome, LeanSolveResult):
                successes += 1
                assert np.array_equal(outcome.x, ref.x)
                assert np.array_equal(outcome.reference, ref.reference)
            else:
                # every failure is a typed library error, never a bare
                # traceback, and only deterministic solver faults
                # survive the retry rounds
                assert isinstance(outcome, ReproError)
                assert isinstance(outcome, SolverError)
                assert not is_retryable(outcome)
        assert successes >= len(requests) // 2  # the storm didn't take the service down
        # the plan genuinely fired kills, and the pool rode them out
        assert plan.injected("kill") >= 1
        assert metrics.shard_crashes >= 1

    def test_worker_restart_keeps_serving(self, tmp_path, monkeypatch):
        """A kill storm on a single-worker pool: the shard restarts and
        later requests (including transparent matrix re-sends) succeed."""
        plan = ChaosPlan(seed=3, worker_kill_rate=1.0, state_dir=str(tmp_path))
        monkeypatch.setenv(CHAOS_ENV, list(plan.chaos_env().values())[0])
        requests = _requests(n=6, unique=1, sizes=(12,), seed=4)
        service = ServiceConfig(
            workers=1,
            max_batch_size=4,
            resilience=ResiliencePolicy(max_shard_restarts=20),
        )
        reference, _ = run_sequential(requests, ServiceConfig(workers=1))
        with NetServer(NetServerConfig(service=service)) as server:
            host, port = server.address
            with NetClient(host, port, timeout_s=120.0) as client:
                outcomes = drive_network(
                    client, requests, max_rounds=10, timeout_s=120.0
                )
                metrics = client.metrics()
        monkeypatch.delenv(CHAOS_ENV)
        assert all(isinstance(o, LeanSolveResult) for o in outcomes)
        for outcome, ref in zip(outcomes, reference):
            assert np.array_equal(outcome.x, ref.x)
        assert metrics.shard_crashes >= 1
        assert plan.injected("kill") >= 1


# ----------------------------------------------------------------------
# precision tiers on the wire and in shared memory
# ----------------------------------------------------------------------


class TestWireDtypes:
    """Regression: the codec carried raw bytes but decoded every blob as
    float64 — a float32 solution either crashed reshape (half the bytes)
    or, when sizes collided, silently reinterpreted bit patterns."""

    def test_f32_round_trip_preserves_dtype_and_bits(self):
        from repro.serve.net.protocol import array_dtype_name

        x = np.random.default_rng(0).standard_normal(9).astype(np.float32)
        blob = array_to_bytes(x)
        assert len(blob) == 9 * 4
        assert array_dtype_name(x) == "float32"
        decoded = array_from_bytes(blob, (9,), "float32")
        assert decoded.dtype == np.float32
        assert np.array_equal(decoded, x)

    def test_missing_dtype_defaults_to_float64(self):
        # old-peer interop: pre-tier peers never send the dtypes list
        x = np.random.default_rng(1).standard_normal(5)
        assert np.array_equal(array_from_bytes(array_to_bytes(x), (5,)), x)

    def test_unknown_dtype_name_is_typed(self):
        with pytest.raises(WireProtocolError, match="unknown wire dtype"):
            array_from_bytes(b"\x00" * 8, (2,), "float16")

    def test_size_mismatch_is_typed_per_dtype(self):
        blob = np.zeros(4, dtype=np.float32).tobytes()
        # correct under f32, a typed refusal under the f64 default
        assert array_from_bytes(blob, (4,), "float32").dtype == np.float32
        with pytest.raises(WireProtocolError, match="expected"):
            array_from_bytes(blob, (4,))

    def test_exotic_dtypes_canonicalize_to_f64_on_the_wire(self):
        from repro.serve.net.protocol import array_dtype_name

        ints = np.arange(4)
        assert array_dtype_name(ints) == "float64"
        decoded = array_from_bytes(array_to_bytes(ints), (4,))
        assert decoded.dtype == np.float64 and np.array_equal(decoded, ints)


class TestSharedMemoryDtypes:
    """Regression: the transport hardwired ``dtype=float`` on both ends;
    float32 blocks were silently upcast on publish, and a publisher /
    consumer dtype disagreement reinterpreted raw bytes undetected."""

    def test_f32_block_round_trips_at_f32(self):
        rng = np.random.default_rng(3)
        xs = rng.standard_normal((2, 5)).astype(np.float32)
        refs = rng.standard_normal((2, 5)).astype(np.float32)
        ref = publish_block(xs, refs)
        assert ref.dtype_x == "float32" and ref.dtype_ref == "float32"
        block = AttachedBlock(ref)
        for i in range(2):
            x, reference = block.row(i)
            assert x.dtype == np.float32 and reference.dtype == np.float32
            assert np.array_equal(x, xs[i])
            assert np.array_equal(reference, refs[i])

    def test_mixed_dtype_regions_do_not_promote(self):
        # the service's real shape: float32-tier solutions next to the
        # always-float64 digital references
        rng = np.random.default_rng(4)
        xs = rng.standard_normal((3, 4)).astype(np.float32)
        refs = rng.standard_normal((3, 4))
        ref = publish_block(xs, refs)
        assert ref.dtype_x == "float32" and ref.dtype_ref == "float64"
        block = AttachedBlock(ref)
        x, reference = block.row(1)
        assert x.dtype == np.float32 and np.array_equal(x, xs[1])
        assert reference.dtype == np.float64 and np.array_equal(reference, refs[1])
        block.release()

    def test_dtype_disagreement_detected_not_reinterpreted(self):
        from dataclasses import replace

        ref = publish_block(np.ones((3, 5)), np.zeros((3, 5)))
        # a consumer that believes the regions are wider than published
        lying = replace(ref, n=8)
        with pytest.raises(ServeError, match="bytes"):
            AttachedBlock(lying)
        # the refusal closed its mapping without unlinking: the honest
        # descriptor still attaches, then releases the segment
        AttachedBlock(ref).release()

    def test_inline_payload_size_checked_exactly(self):
        from dataclasses import replace

        ref = publish_block(np.ones((2, 3), dtype=np.float32), np.ones((2, 3)))
        if not ref.inline:
            block = AttachedBlock(ref)
            block.release()
        bad = BlockRef(
            name=None, batch=2, n=3, payload=b"\x00" * 10,
            dtype_x="float32", dtype_ref="float64",
        )
        with pytest.raises(ServeError, match="expected"):
            AttachedBlock(bad)

    def test_unknown_region_dtype_is_typed(self):
        bad = BlockRef(name=None, batch=1, n=2, payload=b"\x00" * 16, dtype_x="float16")
        with pytest.raises(ServeError, match="unknown block dtype"):
            AttachedBlock(bad)

    def test_old_descriptor_defaults_to_float64(self):
        stacked = np.stack([np.ones((2, 4)), np.zeros((2, 4))])
        ref = BlockRef(name=None, batch=2, n=4, payload=stacked.tobytes())
        assert ref.dtype_x == "float64" and ref.dtype_ref == "float64"
        x, reference = AttachedBlock(ref).row(0)
        assert np.array_equal(x, np.ones(4)) and np.array_equal(reference, np.zeros(4))


class TestNetServingPrecisionTiers:
    def test_f32_tier_round_trips_over_real_sockets(self):
        from repro.core.backend import F32_TOLERANCE

        requests = _requests(n=8, unique=2, sizes=(12,), seed=2)
        f64_config = _server_config(workers=2)
        f32_service = ServiceConfig(workers=2, max_batch_size=8, backend="numpy-f32")
        reference, _ = run_sequential(requests, f64_config.service)
        with NetServer(NetServerConfig(service=f32_service)) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                results = client.solve_all(requests, timeout=120.0)
        for res, ref in zip(results, reference):
            assert res.x.dtype == np.float32  # survived TCP at its tier
            assert res.reference.dtype == np.float64
            assert np.array_equal(res.reference, ref.reference)
            assert F32_TOLERANCE.admits(res.x, ref.x)

    def test_f64_tier_unchanged_headers_carry_dtypes(self):
        # the default tier still answers float64, now with explicit
        # dtype names in the result header
        requests = _requests(n=4, unique=1, sizes=(12,), seed=5)
        reference, _ = run_sequential(requests, ServiceConfig(workers=1))
        with NetServer(_server_config(workers=1)) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                results = client.solve_all(requests, timeout=120.0)
        for res, ref in zip(results, reference):
            assert res.x.dtype == np.float64
            assert np.array_equal(res.x, ref.x)
